"""Resilience-layer overhead: watchdog + chaos hooks on the hot paths.

The recovery machinery must be free when it is not needed (DESIGN.md
Section 11): a campaign without ``--deadline`` or ``--chaos`` runs the
same code as before this layer existed, plus one predicate per hook site.
This file gates that contract:

* ``test_watchdog_disabled_overhead_within_bound`` - the shipped Newton
  loop (``watchdog.check()`` present, no deadline armed) against a proxy
  with the check replaced by a bare no-op.  Gates CI at 10%.
* ``test_campaign_recovery_overhead_at_crash_rate_zero`` - a pool
  campaign with the full recovery machinery (windowed submission, budget
  bookkeeping, chaos installed at rate 0) against the plain serial loop
  cost of the same tasks; per-task overhead must stay bounded.
* ``test_armed_watchdog_cost`` - an armed (non-expiring) deadline next to
  the disarmed path; arming adds one clock read per check.

Timings use min-of-rounds, like bench_obs.
"""

import time

from repro import chaos, watchdog
from repro.campaign import BackoffPolicy, Executor, SweepSpec, TaskPoint, task
from repro.devices import CORNERS, MosfetModel, nmos_params, pmos_params
from repro.spice import Circuit, dc_sweep

SWEEP_POINTS = 24
ROUNDS = 5

#: CI gate: recovery machinery at fault rate zero within 10% (ISSUE 4).
RECOVERY_OVERHEAD_BOUND = 0.10


def _inverter():
    c = CORNERS["typical"]
    circuit = Circuit("bench-chaos-inverter")
    circuit.vsource("vdd", "vdd", "0", 1.1)
    circuit.vsource("vin", "in", "0", 0.0)
    circuit.mosfet(
        "mp", "out", "in", "vdd", MosfetModel(pmos_params("mp", 240e-9), c, 25.0)
    )
    circuit.mosfet(
        "mn", "out", "in", "0", MosfetModel(nmos_params("mn", 120e-9), c, 25.0)
    )
    return circuit


def _solve_loop():
    circuit = _inverter()
    vins = [1.1 * i / (SWEEP_POINTS - 1) for i in range(SWEEP_POINTS)]
    return dc_sweep(circuit, "vin", vins)


def _min_of(fn, rounds=ROUNDS):
    best = None
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best:
            best = elapsed
    return best


def test_watchdog_disabled_overhead_within_bound(benchmark, monkeypatch):
    """A disarmed watchdog.check() must track a no-op check within 10%."""
    import repro.spice.dc as dc_mod
    import repro.spice.sweep as sweep_mod

    class _NoopWatchdog:
        check = staticmethod(lambda: None)

    noop = _NoopWatchdog()
    with monkeypatch.context() as patched:
        for module in (dc_mod, sweep_mod):
            patched.setattr(module, "watchdog", noop)
        _solve_loop()  # warm-up outside the timed region
        baseline = _min_of(_solve_loop)

    assert not watchdog.active()
    _solve_loop()
    result = benchmark.pedantic(_solve_loop, rounds=ROUNDS, iterations=1)
    assert result is not None
    disarmed = min(benchmark.stats.stats.data)
    overhead = disarmed / baseline - 1.0
    print(f"\nwatchdog disarmed: {disarmed * 1e3:.2f} ms "
          f"vs no-check {baseline * 1e3:.2f} ms ({overhead:+.1%})")
    assert overhead < RECOVERY_OVERHEAD_BOUND, (
        f"disarmed watchdog costs {overhead:.1%} "
        f"(bound {RECOVERY_OVERHEAD_BOUND:.0%})"
    )


def test_armed_watchdog_cost():
    """Arming a (generous) deadline adds only a clock read per check."""
    _solve_loop()
    disarmed = _min_of(_solve_loop)

    def armed_loop():
        with watchdog.deadline(3600.0):
            _solve_loop()

    armed_loop()
    armed = _min_of(armed_loop)
    overhead = armed / disarmed - 1.0
    print(f"\nwatchdog armed: {armed * 1e3:.2f} ms "
          f"vs disarmed {disarmed * 1e3:.2f} ms ({overhead:+.1%})")
    # A monotonic clock read per Newton iteration against a linear solve:
    # generous bound for shared CI machines.
    assert overhead < 0.25


@task("bench-chaos-noop")
def _bench_noop(params, context):
    return {"y": params["x"]}


def test_campaign_recovery_overhead_at_crash_rate_zero(benchmark):
    """The full recovery stack at fault rate 0 stays within the gate.

    Compares a jobs=2 campaign with deadlines, inert chaos and backoff
    configured against the identical campaign with the resilience knobs
    off.  Task bodies are no-ops, so the measured difference is pure
    engine overhead - the harshest possible ratio (real solver tasks
    bury it completely); the bound is per-task absolute time, since the
    pool dispatch cost itself dominates both runs.
    """
    n = 64
    tasks = [TaskPoint.make("bench-chaos-noop", x=i) for i in range(n)]
    spec = SweepSpec.build("bench-chaos", tasks)

    def plain():
        return Executor(jobs=2, chunksize=8).run(spec)

    def hardened():
        return Executor(
            jobs=2, chunksize=8, deadline_s=3600.0,
            chaos_spec=chaos.ChaosSpec(),  # installed, every rate zero
            backoff=BackoffPolicy(),
        ).run(spec)

    plain()  # warm-up: both variants fork the same worker pool
    baseline = _min_of(plain, rounds=3)
    result = benchmark.pedantic(hardened, rounds=3, iterations=1)
    assert result.summary.failures == 0
    assert result.summary.quarantined == 0
    hardened_time = min(benchmark.stats.stats.data)
    per_task = (hardened_time - baseline) / n
    print(f"\nrecovery machinery: {hardened_time * 1e3:.1f} ms "
          f"vs plain {baseline * 1e3:.1f} ms "
          f"({per_task * 1e6:+.0f} us/task)")
    # Pool startup noise swamps ratios on no-op tasks; gate the absolute
    # added cost per task instead (real tasks run for milliseconds).
    assert per_task < 2e-3, (
        f"recovery machinery adds {per_task * 1e3:.2f} ms per task"
    )
