"""E6 - Section V: March m-LZ length, detection, and the March LZ gap.

Benchmarks the March engine at the paper's full geometry (4K x 64) and
asserts the algorithmic claims:

* March m-LZ has length 5N+4 (20484 operations on the 4K block);
* it detects DRF_DS on both stored backgrounds, under a defective
  regulator solved at the electrical level;
* March LZ - the test it extends - misses the stored-0 case;
* a fault-free device passes all three Table III iterations.
"""

import pytest

from repro.core.drf import DRFScenario
from repro.core.testflow import paper_flow
from repro.devices import CellVariation
from repro.march import march_lz, march_m_lz, run_march
from repro.sram import LowPowerSRAM, SRAMConfig

FULL = SRAMConfig(n_words=4096, word_bits=64)


def test_march_m_lz_full_block(benchmark):
    """Engine throughput on the paper's 4Kx64 reference block."""
    test = march_m_lz()

    def run():
        return run_march(test, LowPowerSRAM(FULL))

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.passed
    assert result.operations == 5 * 4096 + 4


def test_length_claim(benchmark):
    benchmark.pedantic(march_m_lz, rounds=1, iterations=1)
    test = march_m_lz()
    assert test.complexity() == "5N+4"
    assert test.length(4096) == 20484


@pytest.fixture(scope="module")
def defective_scenarios():
    """Electrically-solved scenarios: Df1 open enough to flip CS2 cells."""
    from repro.regulator import DEFECTS, VrefSelect
    from repro.devices.pvt import PVT

    def build(variation):
        return DRFScenario(
            pvt=PVT("fs", 1.0, 125.0),
            vrefsel=VrefSelect.VREF74,
            variation=variation,
            defect=DEFECTS[1],
            resistance=20e6,
            weak_cell_locations=((9, 4),),
        )

    return {
        "ones": build(CellVariation(mpcc1=-3, mncc1=-3)),
        "zeros": build(CellVariation(mpcc2=-3, mncc2=-3)),
    }


def test_m_lz_detects_both_backgrounds(defective_scenarios, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for label, scenario in defective_scenarios.items():
        result = scenario.run_test(march_m_lz())
        assert result.detected, f"DRF on stored {label} missed"


def test_march_lz_gap(defective_scenarios, benchmark):
    """The coverage hole that motivated the paper's extension."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert defective_scenarios["ones"].run_test(march_lz()).detected
    assert defective_scenarios["zeros"].run_test(march_lz()).passed


def test_fault_free_passes_all_table_iii_iterations(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    from repro.regulator import VrefSelect
    from repro.devices.pvt import PVT

    flow = paper_flow()
    for iteration in flow.iterations:
        scenario = DRFScenario(
            pvt=iteration.config.pvt,
            vrefsel=iteration.config.vrefsel,
            variation=CellVariation.worst_case_drv1(6.0),
        )
        result = scenario.run_test(march_m_lz(iteration.config.ds_time))
        assert result.passed, iteration.config.label()
