"""E10 - sweep service: submission latency, multi-tenant throughput,
dedupe overhead and remote-worker scaling.

Four service-level contracts, measured against the same
:class:`~repro.serve.service.SweepService` the daemon wraps:

* submission-to-first-result latency stays interactive (the long-poll
  event arrives well under a second for a trivial point);
* eight tenants submitting concurrently all complete, with cross-tenant
  dedupe collapsing the shared grid to one execution per unique point;
* the service layer's bookkeeping (job store, event log, subscriber
  fan-out) costs <=10% wall time over driving the executor directly on
  an equivalent warm-cache sweep;
* two remote ``repro worker`` processes sustain >=1.5x the aggregate
  points/sec of one worker on a scheduling-bound probe grid (the
  multi-host tier actually scales instead of serialising on the lease
  protocol).
"""

import os
import subprocess
import sys
import time
from pathlib import Path

from repro.campaign import SweepSpec, TaskPoint, run_campaign, task
from repro.serve import SweepService
from repro.serve.client import ServeClient

#: Wall-clock ceiling for every in-bench wait.
DEADLINE = 60.0

REPO = Path(__file__).resolve().parent.parent


@task("bench-serve-spin")
def _bench_spin(params, context):
    # ~100us of real work: small enough that service overhead dominates.
    total = 0.0
    for i in range(200):
        total += (params["x"] + i) ** 0.5
    return {"v": total}


def _spec(xs, name):
    return SweepSpec.build(name, [
        TaskPoint.make("bench-serve-spin", x=x) for x in xs
    ])


def _wait_jobs(service, jobs):
    deadline = time.monotonic() + DEADLINE
    while time.monotonic() < deadline:
        if all(service.store.get(j.id).state.terminal for j in jobs):
            return
        time.sleep(0.002)
    raise AssertionError("service jobs did not finish in time")


def test_submission_to_first_result_latency(benchmark, tmp_path_factory):
    cache = tmp_path_factory.mktemp("serve-latency")
    service = SweepService(jobs=1, cache_dir=cache).start()
    counter = iter(range(10_000_000))

    def submit_and_wait_first():
        job = service.submit(_spec([1_000_000 + next(counter)], "latency"),
                             tenant="bench")
        batch = service.store.wait_events(job.id, since=1, timeout=DEADLINE)
        assert batch, "no event after submission"
        return job

    try:
        benchmark.pedantic(submit_and_wait_first, rounds=20, iterations=1,
                           warmup_rounds=2)
    finally:
        service.stop(timeout=DEADLINE)
    stats = benchmark.stats.stats
    assert stats.max < 1.0, (
        f"submission-to-first-result took {stats.max:.3f}s"
    )


def test_eight_tenant_throughput_with_dedupe(benchmark, tmp_path_factory):
    # Eight tenants, 32 points each, every grid overlapping half of its
    # neighbour's: 8*32 = 256 submitted points but only 144 unique.
    grids = [range(base, base + 32) for base in range(0, 8 * 16, 16)]
    unique = len(set().union(*grids))

    def storm():
        cache = tmp_path_factory.mktemp("serve-throughput")
        service = SweepService(jobs=1, cache_dir=cache).start()
        jobs = [
            service.submit(_spec(grid, f"tenant-{i}"), tenant=f"t{i}")
            for i, grid in enumerate(grids)
        ]
        _wait_jobs(service, jobs)
        counters = service.stats()["counters"]
        service.stop(timeout=DEADLINE)
        return counters

    counters = benchmark.pedantic(storm, rounds=3, iterations=1)
    assert counters["serve.points.total"] == 256
    assert counters["serve.points.executed"] == unique  # dedupe held
    assert counters["serve.jobs.completed"] == 8
    jobs_per_sec = 8 / benchmark.stats.stats.mean
    assert jobs_per_sec > 0.5, f"only {jobs_per_sec:.2f} jobs/s"


def test_dedupe_overhead_vs_direct_executor(benchmark, tmp_path_factory):
    # Same warm-cache sweep through both layers: the service's job store,
    # event log and subscriber map may cost at most 10% extra wall time.
    xs = range(64)
    direct_cache = tmp_path_factory.mktemp("serve-direct")
    run_campaign(_spec(xs, "overhead"), cache_dir=str(direct_cache))

    def direct():
        return run_campaign(_spec(xs, "overhead"),
                            cache_dir=str(direct_cache))

    start = time.perf_counter()
    for _ in range(5):
        result = direct()
    direct_elapsed = (time.perf_counter() - start) / 5
    assert result.summary.executed == 0  # warm

    service = SweepService(jobs=1, cache_dir=direct_cache).start()

    def through_service():
        job = service.submit(_spec(xs, "overhead"), tenant="bench")
        _wait_jobs(service, [job])
        return job

    try:
        job = benchmark.pedantic(through_service, rounds=5, iterations=1,
                                 warmup_rounds=1)
        assert service.job_dict(job.id)["cache_hits"] == 64
    finally:
        service.stop(timeout=DEADLINE)
    served_elapsed = benchmark.stats.stats.mean
    assert served_elapsed <= direct_elapsed * 1.10 + 0.005, (
        f"service overhead {served_elapsed / direct_elapsed - 1.0:.1%} "
        f"({served_elapsed:.4f}s vs {direct_elapsed:.4f}s direct)"
    )


# -- remote-worker scaling --------------------------------------------------


def _spawn(args, token=None):
    env = dict(os.environ, PYTHONPATH=str(REPO / "src"))
    if token is not None:
        env["REPRO_WORKER_TOKEN"] = token
    return subprocess.Popen(
        [sys.executable, "-m", "repro", *args],
        env=env, cwd=str(REPO),
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
    )


def _worker_farm_rate(tmp_path, n_workers, n_points, sleep_ms=100):
    """Aggregate points/sec of ``n_workers`` remote workers on a fresh
    jobs=0 daemon: submit one scheduling-bound probe sweep, time it to
    DONE over HTTP."""
    cache = tmp_path / f"farm-{n_workers}"
    port_file = tmp_path / f"port-{n_workers}"
    daemon = _spawn(["serve", "--cache-dir", str(cache), "--jobs", "0",
                     "--port", "0", "--port-file", str(port_file)])
    workers = []
    try:
        deadline = time.monotonic() + DEADLINE
        while not (port_file.exists() and port_file.read_text().strip()):
            assert time.monotonic() < deadline, "daemon never bound"
            time.sleep(0.05)
        url = f"http://127.0.0.1:{int(port_file.read_text())}"
        client = ServeClient(url)
        workers = [
            _spawn(["worker", "--url", url, "--name", f"bench-{i}"])
            for i in range(n_workers)
        ]
        while client.stats()["counters"].get(
                "serve.workers.registered", 0) < n_workers:
            assert time.monotonic() < deadline, "workers never registered"
            time.sleep(0.05)
        start = time.perf_counter()
        job = client.submit({"name": f"farm-{n_workers}", "tasks": [
            {"kind": "probe", "params": {"x": x, "sleep_ms": sleep_ms}}
            for x in range(n_points)
        ]})
        final = client.wait(job["id"], timeout=DEADLINE)
        elapsed = time.perf_counter() - start
        assert final["state"] == "done", f"sweep ended {final['state']}"
        return n_points / elapsed
    finally:
        for proc in workers + [daemon]:
            if proc.poll() is None:
                proc.terminate()
                proc.wait(10)


def test_two_workers_scale_over_one(tmp_path):
    # 40 points x 100ms in chunks of 5: one worker runs the 8 chunks
    # back to back, two workers split them 4/4.  The gate is deliberately
    # below the ideal 2x to absorb lease/heartbeat overhead and CI jitter.
    single = _worker_farm_rate(tmp_path, 1, 40)
    double = _worker_farm_rate(tmp_path, 2, 40)
    print(f"\nremote scaling: 1 worker {single:.1f} pts/s, "
          f"2 workers {double:.1f} pts/s ({double / single:.2f}x)")
    assert double >= 1.5 * single, (
        f"two workers only {double / single:.2f}x one worker "
        f"({double:.1f} vs {single:.1f} points/s)"
    )
