"""E10 - sweep service: submission latency, multi-tenant throughput and
dedupe overhead.

Three service-level contracts, measured against the same in-process
:class:`~repro.serve.service.SweepService` the daemon wraps:

* submission-to-first-result latency stays interactive (the long-poll
  event arrives well under a second for a trivial point);
* eight tenants submitting concurrently all complete, with cross-tenant
  dedupe collapsing the shared grid to one execution per unique point;
* the service layer's bookkeeping (job store, event log, subscriber
  fan-out) costs <=10% wall time over driving the executor directly on
  an equivalent warm-cache sweep.
"""

import time

from repro.campaign import SweepSpec, TaskPoint, run_campaign, task
from repro.serve import SweepService

#: Wall-clock ceiling for every in-bench wait.
DEADLINE = 60.0


@task("bench-serve-spin")
def _bench_spin(params, context):
    # ~100us of real work: small enough that service overhead dominates.
    total = 0.0
    for i in range(200):
        total += (params["x"] + i) ** 0.5
    return {"v": total}


def _spec(xs, name):
    return SweepSpec.build(name, [
        TaskPoint.make("bench-serve-spin", x=x) for x in xs
    ])


def _wait_jobs(service, jobs):
    deadline = time.monotonic() + DEADLINE
    while time.monotonic() < deadline:
        if all(service.store.get(j.id).state.terminal for j in jobs):
            return
        time.sleep(0.002)
    raise AssertionError("service jobs did not finish in time")


def test_submission_to_first_result_latency(benchmark, tmp_path_factory):
    cache = tmp_path_factory.mktemp("serve-latency")
    service = SweepService(jobs=1, cache_dir=cache).start()
    counter = iter(range(10_000_000))

    def submit_and_wait_first():
        job = service.submit(_spec([1_000_000 + next(counter)], "latency"),
                             tenant="bench")
        batch = service.store.wait_events(job.id, since=1, timeout=DEADLINE)
        assert batch, "no event after submission"
        return job

    try:
        benchmark.pedantic(submit_and_wait_first, rounds=20, iterations=1,
                           warmup_rounds=2)
    finally:
        service.stop(timeout=DEADLINE)
    stats = benchmark.stats.stats
    assert stats.max < 1.0, (
        f"submission-to-first-result took {stats.max:.3f}s"
    )


def test_eight_tenant_throughput_with_dedupe(benchmark, tmp_path_factory):
    # Eight tenants, 32 points each, every grid overlapping half of its
    # neighbour's: 8*32 = 256 submitted points but only 144 unique.
    grids = [range(base, base + 32) for base in range(0, 8 * 16, 16)]
    unique = len(set().union(*grids))

    def storm():
        cache = tmp_path_factory.mktemp("serve-throughput")
        service = SweepService(jobs=1, cache_dir=cache).start()
        jobs = [
            service.submit(_spec(grid, f"tenant-{i}"), tenant=f"t{i}")
            for i, grid in enumerate(grids)
        ]
        _wait_jobs(service, jobs)
        counters = service.stats()["counters"]
        service.stop(timeout=DEADLINE)
        return counters

    counters = benchmark.pedantic(storm, rounds=3, iterations=1)
    assert counters["serve.points.total"] == 256
    assert counters["serve.points.executed"] == unique  # dedupe held
    assert counters["serve.jobs.completed"] == 8
    jobs_per_sec = 8 / benchmark.stats.stats.mean
    assert jobs_per_sec > 0.5, f"only {jobs_per_sec:.2f} jobs/s"


def test_dedupe_overhead_vs_direct_executor(benchmark, tmp_path_factory):
    # Same warm-cache sweep through both layers: the service's job store,
    # event log and subscriber map may cost at most 10% extra wall time.
    xs = range(64)
    direct_cache = tmp_path_factory.mktemp("serve-direct")
    run_campaign(_spec(xs, "overhead"), cache_dir=str(direct_cache))

    def direct():
        return run_campaign(_spec(xs, "overhead"),
                            cache_dir=str(direct_cache))

    start = time.perf_counter()
    for _ in range(5):
        result = direct()
    direct_elapsed = (time.perf_counter() - start) / 5
    assert result.summary.executed == 0  # warm

    service = SweepService(jobs=1, cache_dir=direct_cache).start()

    def through_service():
        job = service.submit(_spec(xs, "overhead"), tenant="bench")
        _wait_jobs(service, [job])
        return job

    try:
        job = benchmark.pedantic(through_service, rounds=5, iterations=1,
                                 warmup_rounds=1)
        assert service.job_dict(job.id)["cache_hits"] == 64
    finally:
        service.stop(timeout=DEADLINE)
    served_elapsed = benchmark.stats.stats.mean
    assert served_elapsed <= direct_elapsed * 1.10 + 0.005, (
        f"service overhead {served_elapsed / direct_elapsed - 1.0:.1%} "
        f"({served_elapsed:.4f}s vs {direct_elapsed:.4f}s direct)"
    )
