"""E2 - Table I: the case-study DRV ladder.

Regenerates the ten CS rows (max DRV over the corner-temperature grid) and
asserts the paper's structure:

* DRV ladder: CS1 > CS2 > CS3 > CS4 (paper: 730 > 686 > 570 > 110 mV);
* each CSx-1 / CSx-0 pair shares one DRV (mirror symmetry);
* for CSx-1 the DRV is set by DRV_DS1, for CSx-0 by DRV_DS0;
* CS5 equals CS2 at the cell level (the difference is regulator load).
"""

import pytest

from repro.analysis.case_studies import render_table1, table1_rows


@pytest.fixture(scope="module")
def rows(drv_grid):
    return table1_rows(pvt_grid=drv_grid)


def test_table1_generation(benchmark, drv_grid):
    result = benchmark.pedantic(
        table1_rows, kwargs=dict(pvt_grid=drv_grid[:1]), rounds=1, iterations=1
    )
    assert len(result) == 10


def test_table1_ladder(rows, benchmark):
    text = benchmark.pedantic(render_table1, args=(rows,), rounds=1, iterations=1)
    print("\n" + text)
    drv = {row.case.name: row.drv_ds for row in rows}
    assert drv["CS1-1"] > drv["CS2-1"] > drv["CS3-1"] > drv["CS4-1"]
    # Worst case in the 0.65-0.74 V region (paper anchor: 730 mV).
    assert 0.65 < drv["CS1-1"] < 0.75


def test_pairs_share_drv(rows, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    drv = {row.case.name: row.drv_ds for row in rows}
    for family in ("CS1", "CS2", "CS3", "CS4", "CS5"):
        assert drv[f"{family}-1"] == pytest.approx(drv[f"{family}-0"], abs=5e-3)


def test_degrading_state_sets_drv(rows, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for row in rows:
        if row.case.degrades == 1:
            assert row.drv_ds1 > row.drv_ds0
        else:
            assert row.drv_ds0 > row.drv_ds1


def test_cs5_matches_cs2(rows, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    drv = {row.case.name: row.drv_ds for row in rows}
    assert drv["CS5-1"] == pytest.approx(drv["CS2-1"], abs=1e-9)
