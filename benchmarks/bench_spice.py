"""Solver-stack benchmark: compiled assembly vs the reference stamp oracle.

Measures, in one process, the two headline speedups of the compiled MNA
engine (DESIGN.md Section 10):

* a cold regulator operating-point solve (``backend="compiled"`` against
  ``backend="reference"``), gated at >= 2x;
* a 64-point cell supply sweep (:func:`repro.spice.solve_dc_batch` against
  the sequential reference-backend :func:`repro.spice.dc_sweep`), gated at
  >= 4x;

plus the assembly-vs-factorisation wall-time split the solver reports
through :mod:`repro.obs`.

Results are printed (run with ``-s``) and, when ``REPRO_BENCH_JSON`` names
a directory, written to ``bench_spice.json`` there - CI points it at the
campaign cache directory so the numbers ride along with ``report.json`` in
the uploaded artifact.  Set ``REPRO_BENCH_SMOKE=1`` for single-round
timings (the CI smoke mode); the speedup gates still apply.

Timings use min-of-rounds (noise only ever adds time).
"""

import json
import os
import time

import numpy as np
import pytest

from repro import obs
from repro.cell.design import DEFAULT_CELL
from repro.devices.pvt import PVT
from repro.devices.variation import CellVariation
from repro.regulator.design import VrefSelect
from repro.regulator.netlist import _initial_guess, build_regulator
from repro.spice import dc_sweep, solve_dc, solve_dc_batch, using_backend

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "0") == "1"
ROUNDS = 2 if SMOKE else 5
SWEEP_POINTS = 64

#: Acceptance floors for the compiled engine (see ISSUE/DESIGN Section 10).
REGULATOR_SPEEDUP_FLOOR = 2.0
SWEEP_SPEEDUP_FLOOR = 4.0

RESULTS = {}


@pytest.fixture(scope="module", autouse=True)
def _dump_results():
    yield
    out_dir = os.environ.get("REPRO_BENCH_JSON")
    if out_dir and RESULTS:
        os.makedirs(out_dir, exist_ok=True)
        path = os.path.join(out_dir, "bench_spice.json")
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(RESULTS, fh, indent=2, sort_keys=True)
        print(f"\nbench_spice results -> {path}")


def _min_time(fn, rounds=ROUNDS):
    best = None
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best:
            best = elapsed
    return best


def _regulator_solve_time(backend):
    pvt = PVT("typical", 1.1, 25.0)
    circuit, _ = build_regulator(pvt, VrefSelect.VREF70)
    x0 = _initial_guess(circuit, pvt, VrefSelect.VREF70, True)

    def run():
        solve_dc(circuit, x0=x0.copy(), backend=backend)

    run()  # warm-up: one-off plan compilation stays out of the timing
    return _min_time(run)


def _hold_cell():
    return DEFAULT_CELL.build_hold_circuit(1.1, CellVariation.symmetric())


def test_regulator_operating_point_speedup():
    """Cold regulator solve: compiled assembly vs per-element stamps."""
    reference = _regulator_solve_time("reference")
    compiled = _regulator_solve_time("compiled")
    speedup = reference / compiled
    RESULTS["regulator_solve"] = {
        "reference_s": reference,
        "compiled_s": compiled,
        "speedup": speedup,
        "floor": REGULATOR_SPEEDUP_FLOOR,
    }
    print(
        f"\nregulator op point: reference {reference * 1e3:.3f}ms, "
        f"compiled {compiled * 1e3:.3f}ms, speedup {speedup:.2f}x"
    )
    assert speedup >= REGULATOR_SPEEDUP_FLOOR


def test_cell_vdd_sweep_speedup():
    """64-point supply sweep: lock-step batch vs sequential reference."""
    values = list(np.linspace(1.1, 0.35, SWEEP_POINTS))
    sequential_circuit = _hold_cell()
    batch_circuit = _hold_cell()

    def sequential():
        with using_backend("reference"):
            dc_sweep(sequential_circuit, "vddc", values)

    def batch():
        solve_dc_batch(batch_circuit, "vddc", values)

    sequential()
    batch()  # warm-up both (plan compilation out of the timing)
    reference = _min_time(sequential)
    compiled = _min_time(batch)
    speedup = reference / compiled
    RESULTS["cell_vdd_sweep"] = {
        "points": SWEEP_POINTS,
        "reference_s": reference,
        "compiled_s": compiled,
        "speedup": speedup,
        "floor": SWEEP_SPEEDUP_FLOOR,
    }
    print(
        f"\ncell VDD sweep ({SWEEP_POINTS} pts): reference {reference * 1e3:.3f}ms, "
        f"batch {compiled * 1e3:.3f}ms, speedup {speedup:.2f}x"
    )
    assert speedup >= SWEEP_SPEEDUP_FLOOR


def test_assembly_factorisation_split():
    """The obs split histograms quantify where solve time goes."""
    pvt = PVT("typical", 1.1, 25.0)
    circuit, _ = build_regulator(pvt, VrefSelect.VREF70)
    x0 = _initial_guess(circuit, pvt, VrefSelect.VREF70, True)
    with obs.recording() as rec:
        solve_dc(circuit, x0=x0.copy())
    assemble = rec.histograms["dc.assemble.seconds"].total
    factor = rec.histograms["dc.factor.seconds"].total
    total = assemble + factor
    RESULTS["dc_split"] = {
        "assemble_s": assemble,
        "factor_s": factor,
        "assemble_share": assemble / total if total else 0.0,
    }
    print(
        f"\ndc split: assembly {assemble * 1e3:.3f}ms "
        f"({assemble / total:.0%}), factorisation {factor * 1e3:.3f}ms"
    )
    assert assemble > 0.0 and factor > 0.0
