"""Solver-stack benchmark: every registry backend vs the reference oracle.

Measures, in one process, the headline speedups of the optimised MNA
backends (DESIGN.md Sections 10 and 17), parameterized over the backend
registry so a newly registered backend is gated automatically (floors
live in ``conftest.BACKEND_GATES``):

* a cold regulator operating-point solve (each optimised backend against
  ``backend="reference"``);
* a 64-point cell supply sweep (:func:`repro.spice.solve_dc_batch`
  against the sequential reference-backend :func:`repro.spice.dc_sweep`);
* the sparse-vs-dense crossover: warm solve times on regulator+macro
  netlist tiers of increasing size, reporting the unknown count where the
  forced-CSR sparse path overtakes the dense compiled plan, gated at
  sparse >= 1.5x dense on the largest tier;
* the small-netlist latency budget: production ``backend="sparse"``
  (which delegates to the dense plan below its threshold) must stay
  within 10% of ``backend="compiled"`` on the bare regulator netlist;

plus the assembly-vs-factorisation wall-time split the solver reports
through :mod:`repro.obs`.

Results are printed (run with ``-s``) and, when ``REPRO_BENCH_JSON`` names
a directory, written to ``bench_spice.json`` there - CI points it at the
campaign cache directory so the numbers ride along with ``report.json`` in
the uploaded artifact.  Set ``REPRO_BENCH_SMOKE=1`` for single-round
timings (the CI smoke mode); the speedup gates still apply.

Reported times are min-of-rounds (noise only ever adds time); the ratio
gates compare interleaved, adjacent-in-time measurement pairs and take
the median per-round ratio, so a load spike on the host skews a round's
pair together instead of skewing the quotient.
"""

import json
import os
import time

import numpy as np
import pytest

from conftest import OPTIMIZED_BACKENDS, gate_for
from repro import obs
from repro.cell.design import DEFAULT_CELL
from repro.devices import MosfetModel, nmos_params
from repro.devices.pvt import PVT
from repro.devices.variation import CellVariation
from repro.regulator.design import VrefSelect
from repro.regulator.netlist import _initial_guess, build_regulator
from repro.spice import (
    dc_sweep,
    solve_dc,
    solve_dc_batch,
    sparse_threshold,
    using_backend,
)

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "0") == "1"
ROUNDS = 2 if SMOKE else 5
#: Sub-millisecond measurements (single regulator solves) flake at
#: min-of-2; they are cheap enough to always take more rounds.
SMALL_SOLVE_ROUNDS = 9
SWEEP_POINTS = 64

#: Regulator+macro netlist tiers for the crossover bench: number of array
#: columns hung off the regulator's cell-supply rail (0 = bare regulator).
CROSSOVER_TIERS = (0, 32, 96, 256, 384)

#: The sparse backend must beat dense by this factor on the largest tier.
SPARSE_CROSSOVER_FLOOR = 1.5

#: ...and production sparse (delegated) must cost at most this multiple of
#: the compiled backend on the bare regulator netlist.
SMALL_NETLIST_LATENCY_BUDGET = 1.10

RESULTS = {}


@pytest.fixture(scope="module", autouse=True)
def _dump_results():
    yield
    out_dir = os.environ.get("REPRO_BENCH_JSON")
    if out_dir and RESULTS:
        os.makedirs(out_dir, exist_ok=True)
        path = os.path.join(out_dir, "bench_spice.json")
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(RESULTS, fh, indent=2, sort_keys=True)
        print(f"\nbench_spice results -> {path}")


def _time_rounds(fns, rounds=ROUNDS, inner=1):
    """Per-round wall times for several runners, measured *interleaved*.

    Alternating the runners inside one rounds loop (instead of timing
    each in its own block) makes machine-load drift hit every runner
    equally; :func:`_robust_speedup` then compares adjacent-in-time
    pairs, which is what keeps the ratio gates stable on noisy CI hosts.
    ``inner`` runs each timed region that many times and reports the
    mean, so sub-millisecond solves are not at the mercy of a single
    scheduler preemption landing inside one call.
    """
    times = [[] for _ in fns]
    for _ in range(rounds):
        for i, fn in enumerate(fns):
            start = time.perf_counter()
            for _k in range(inner):
                fn()
            times[i].append((time.perf_counter() - start) / inner)
    return times


def _robust_speedup(times_a, times_b):
    """Median of per-round ``a / b`` ratios.

    A load spike inflates one round's pair together, leaving its ratio
    roughly intact, and the median discards the rounds where it did not -
    unlike a ratio of two independent min-of-rounds, where noise landing
    on different rounds skews the quotient directly.
    """
    ratios = sorted(a / b for a, b in zip(times_a, times_b))
    return ratios[len(ratios) // 2]


def _regulator_runner(backend):
    pvt = PVT("typical", 1.1, 25.0)
    circuit, _ = build_regulator(pvt, VrefSelect.VREF70)
    x0 = _initial_guess(circuit, pvt, VrefSelect.VREF70, True)

    def run():
        solve_dc(circuit, x0=x0.copy(), backend=backend)

    run()  # warm-up: one-off plan compilation stays out of the timing
    return run


def _hold_cell():
    return DEFAULT_CELL.build_hold_circuit(1.1, CellVariation.symmetric())


def _regulator_macro_circuit(columns):
    """The regulator driving an array-style load on its cell-supply rail.

    Each column adds one node: a rail-segment resistance, an off NMOS
    (leakage load, keeps the EKV evaluation in the loop) and a bitcell
    decap - the idle-array load shape the DESIGN Section 15 macros put on
    ``vddcc``, at whatever scale the tier asks for.
    """
    pvt = PVT("typical", 1.1, 25.0)
    circuit, nodes = build_regulator(pvt, VrefSelect.VREF70)
    prev = nodes["vddcc"]
    for k in range(columns):
        node = f"col{k}"
        circuit.resistor(f"rcol{k}", prev, node, 5.0)
        circuit.mosfet(
            f"mcol{k}", node, "0", "0",
            MosfetModel(nmos_params(f"mcol{k}", 120e-9)),
        )
        circuit.capacitor(f"ccol{k}", node, "0", 1e-14)
        prev = node
    return circuit


@pytest.mark.parametrize("backend", OPTIMIZED_BACKENDS)
def test_regulator_operating_point_speedup(backend):
    """Cold regulator solve: each optimised backend vs per-element stamps."""
    floor = gate_for(backend)["regulator_speedup"]
    rounds = _time_rounds(
        [_regulator_runner("reference"), _regulator_runner(backend)],
        rounds=SMALL_SOLVE_ROUNDS, inner=5,
    )
    reference, optimised = (min(t) for t in rounds)
    speedup = _robust_speedup(rounds[0], rounds[1])
    RESULTS[f"regulator_solve[{backend}]"] = {
        "backend": backend,
        "reference_s": reference,
        "backend_s": optimised,
        "speedup": speedup,
        "floor": floor,
    }
    print(
        f"\nregulator op point: reference {reference * 1e3:.3f}ms, "
        f"{backend} {optimised * 1e3:.3f}ms, speedup {speedup:.2f}x"
    )
    assert speedup >= floor


@pytest.mark.parametrize("backend", OPTIMIZED_BACKENDS)
def test_cell_vdd_sweep_speedup(backend):
    """64-point supply sweep: lock-step batch vs sequential reference."""
    floor = gate_for(backend)["sweep_speedup"]
    values = list(np.linspace(1.1, 0.35, SWEEP_POINTS))
    sequential_circuit = _hold_cell()
    batch_circuit = _hold_cell()

    def sequential():
        with using_backend("reference"):
            dc_sweep(sequential_circuit, "vddc", values)

    def batch():
        solve_dc_batch(batch_circuit, "vddc", values, backend=backend)

    sequential()
    batch()  # warm-up both (plan compilation out of the timing)
    rounds = _time_rounds([sequential, batch])
    reference, batched = (min(t) for t in rounds)
    speedup = _robust_speedup(rounds[0], rounds[1])
    RESULTS[f"cell_vdd_sweep[{backend}]"] = {
        "backend": backend,
        "points": SWEEP_POINTS,
        "reference_s": reference,
        "backend_s": batched,
        "speedup": speedup,
        "floor": floor,
    }
    print(
        f"\ncell VDD sweep ({SWEEP_POINTS} pts): reference "
        f"{reference * 1e3:.3f}ms, {backend} batch {batched * 1e3:.3f}ms, "
        f"speedup {speedup:.2f}x"
    )
    assert speedup >= floor


def test_sparse_dense_crossover():
    """Warm solves on regulator+macro tiers: where does CSR overtake dense?

    The sparse side runs with delegation disabled so the measurement is
    the true CSR + SuperLU cost at every size; production ``sparse``
    delegates below its threshold, which the latency-budget test covers.
    Gates sparse >= SPARSE_CROSSOVER_FLOOR x dense on the largest tier.
    """
    tiers = []
    crossover_unknowns = None
    for columns in CROSSOVER_TIERS:
        circuit = _regulator_macro_circuit(columns)
        n = circuit.unknown_count()
        warm = solve_dc(circuit, backend="compiled").x

        def dense():
            solve_dc(circuit, x0=warm.copy(), backend="compiled")

        def sparse():
            solve_dc(circuit, x0=warm.copy(), backend="sparse")

        dense()
        with sparse_threshold(0):
            sparse()  # warm-up builds the CSR pattern outside the timing
            rounds = _time_rounds(
                [dense, sparse], rounds=SMALL_SOLVE_ROUNDS, inner=3
            )
        dense_s, sparse_s = (min(t) for t in rounds)
        ratio = _robust_speedup(rounds[0], rounds[1])
        tiers.append({
            "columns": columns,
            "unknowns": n,
            "dense_s": dense_s,
            "sparse_s": sparse_s,
            "sparse_speedup": ratio,
        })
        if crossover_unknowns is None and ratio >= 1.0:
            crossover_unknowns = n
        print(
            f"\ncrossover tier {columns:4d} cols ({n:4d} unknowns): "
            f"dense {dense_s * 1e3:.3f}ms, sparse {sparse_s * 1e3:.3f}ms, "
            f"sparse speedup {ratio:.2f}x"
        )
    RESULTS["sparse_crossover"] = {
        "tiers": tiers,
        "crossover_unknowns": crossover_unknowns,
        "floor": SPARSE_CROSSOVER_FLOOR,
    }
    print(f"\nsparse/dense crossover at ~{crossover_unknowns} unknowns")
    largest = tiers[-1]
    assert largest["sparse_speedup"] >= SPARSE_CROSSOVER_FLOOR, (
        f"sparse only {largest['sparse_speedup']:.2f}x dense at "
        f"{largest['unknowns']} unknowns"
    )


def test_sparse_small_netlist_latency_budget():
    """Production sparse must not regress small solves beyond the budget.

    ``backend="sparse"`` delegates to the dense compiled plan below its
    threshold, so the bare regulator netlist should cost the same through
    either name - this pins the delegation policy with a timing gate.
    """
    rounds = _time_rounds(
        [_regulator_runner("compiled"), _regulator_runner("sparse")],
        rounds=SMALL_SOLVE_ROUNDS, inner=5,
    )
    compiled, sparse = (min(t) for t in rounds)
    ratio = _robust_speedup(rounds[1], rounds[0])
    RESULTS["sparse_small_netlist"] = {
        "compiled_s": compiled,
        "sparse_s": sparse,
        "ratio": ratio,
        "budget": SMALL_NETLIST_LATENCY_BUDGET,
    }
    print(
        f"\nsmall-netlist latency: compiled {compiled * 1e3:.3f}ms, "
        f"sparse (delegated) {sparse * 1e3:.3f}ms, ratio {ratio:.2f}"
    )
    assert ratio <= SMALL_NETLIST_LATENCY_BUDGET


def test_assembly_factorisation_split():
    """The obs split histograms quantify where solve time goes."""
    pvt = PVT("typical", 1.1, 25.0)
    circuit, _ = build_regulator(pvt, VrefSelect.VREF70)
    x0 = _initial_guess(circuit, pvt, VrefSelect.VREF70, True)
    with obs.recording() as rec:
        solve_dc(circuit, x0=x0.copy())
    assemble = rec.histograms["dc.assemble.seconds"].total
    factor = rec.histograms["dc.factor.seconds"].total
    total = assemble + factor
    RESULTS["dc_split"] = {
        "assemble_s": assemble,
        "factor_s": factor,
        "assemble_share": assemble / total if total else 0.0,
    }
    print(
        f"\ndc split: assembly {assemble * 1e3:.3f}ms "
        f"({assemble / total:.0%}), factorisation {factor * 1e3:.3f}ms"
    )
    assert assemble > 0.0 and factor > 0.0
