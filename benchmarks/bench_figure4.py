"""E1 - Fig. 4: DRV_DS1 / DRV_DS0 versus per-transistor Vth variation.

Regenerates both panels (worst case over the corner-temperature grid) and
asserts the paper's observations:

* observation 1/2: the sign pattern that degrades each stored value;
* the transistors of the value-driving inverter dominate;
* pass-transistor variation matters least but is not negligible;
* the symmetric cell sits at the ~60 mV floor (paper: "over 60 mV").
"""

import pytest

from repro.analysis.figure4 import figure4_sweep, render_figure4, series

SIGMAS = (-6.0, -4.0, -2.0, 0.0, 2.0, 4.0, 6.0)


@pytest.fixture(scope="module")
def points(drv_grid):
    return figure4_sweep(sigmas=SIGMAS, pvt_grid=drv_grid)


def test_figure4_sweep(benchmark, drv_grid):
    """Timed at reduced resolution; the printed artifact uses the module
    fixture's full sweep."""
    result = benchmark.pedantic(
        figure4_sweep,
        kwargs=dict(sigmas=(-6.0, 0.0, 6.0), transistors=("mncc1",), pvt_grid=drv_grid),
        rounds=1, iterations=1,
    )
    assert len(result) == 3


def test_figure4a_drv_ds1_shape(points, benchmark):
    text = benchmark.pedantic(render_figure4, args=(points, "ds1"), rounds=1, iterations=1)
    print("\n" + text)
    # Observation 1: negative sigma on the S-driving inverter raises DRV_DS1.
    for name in ("mpcc1", "mncc1", "mncc3"):
        _x, y = series(points, name, "ds1")
        assert y[0] > y[3] + 0.005, f"{name}: -6s must degrade DRV_DS1"
    # And positive sigma on the other half raises it too.  The far-side
    # pass gate (MNcc4) is the weakest lever - its individual effect is
    # millivolts, matching its near-flat Fig. 4 series.
    for name, floor in (("mpcc2", 0.005), ("mncc2", 0.005), ("mncc4", 0.002)):
        _x, y = series(points, name, "ds1")
        assert y[-1] > y[3] + floor, f"{name}: +6s must degrade DRV_DS1"


def test_figure4b_drv_ds0_shape(points, benchmark):
    text = benchmark.pedantic(render_figure4, args=(points, "ds0"), rounds=1, iterations=1)
    print("\n" + text)
    # Observation 2 is the mirror image (MNcc3 is the weak lever here).
    for name, floor in (("mpcc1", 0.005), ("mncc1", 0.005), ("mncc3", 0.002)):
        _x, y = series(points, name, "ds0")
        assert y[-1] > y[3] + floor, f"{name}: +6s must degrade DRV_DS0"
    for name, floor in (("mpcc2", 0.005), ("mncc2", 0.005), ("mncc4", 0.005)):
        _x, y = series(points, name, "ds0")
        assert y[0] > y[3] + floor, f"{name}: -6s must degrade DRV_DS0"


def test_inverter_dominates_pass_gate(points, benchmark):
    benchmark.pedantic(series, args=(points, "mncc1", "ds1"), rounds=1, iterations=1)
    _x, inverter = series(points, "mncc1", "ds1")
    _x, pass_gate = series(points, "mncc3", "ds1")
    assert inverter[0] > pass_gate[0]
    # "less impact ... which cannot be neglected, however"
    _x, sym = series(points, "mncc1", "ds1")
    assert pass_gate[0] > sym[3] + 0.01


def test_symmetric_floor(points, benchmark):
    """Zero variation: DRV in the tens-of-millivolt region (paper: >60mV)."""
    benchmark.pedantic(series, args=(points, "mpcc1", "ds1"), rounds=1, iterations=1)
    _x, y = series(points, "mpcc1", "ds1")
    assert 0.04 < y[3] < 0.20
