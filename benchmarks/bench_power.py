"""E5 - Section IV.B power observations.

Regenerates the static-power comparison (ACT idle / healthy DS / DS with
the worst power-category defect) across corners at nominal supply and
asserts the paper's claims:

* the worst power defect (Vreg = VDD) still saves >30% versus ACT idle at
  every condition - switching off the periphery alone is "already
  sufficient to achieve important power consumption savings";
* a healthy deep sleep beats the defective one wherever leakage dominates.
"""

import pytest

from repro.analysis.power_savings import (
    power_comparison,
    render_power,
    worst_case_defective_savings,
)
from repro.devices.pvt import paper_pvt_grid


@pytest.fixture(scope="module")
def results():
    return power_comparison(pvt_grid=paper_pvt_grid(vdds=(1.1,)))


def test_power_sweep(benchmark):
    result = benchmark.pedantic(
        power_comparison,
        kwargs=dict(pvt_grid=paper_pvt_grid(corners=("typical",), vdds=(1.1,))),
        rounds=1, iterations=1,
    )
    assert len(result) == 3


def test_defective_ds_saves_over_30_percent(results, benchmark):
    text = benchmark.pedantic(render_power, args=(results,), rounds=1, iterations=1)
    print("\n" + text)
    assert worst_case_defective_savings(results) > 0.30


def test_healthy_beats_defective_when_hot(results, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for r in results:
        if r.pvt.temp_c == 125.0:
            assert r.ds_w < r.ds_defective_w, r.pvt.label()


def test_leakage_scaling_story(results, benchmark):
    """DS-mode savings exist precisely where leakage dominates (hot)."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    hot = [r for r in results if r.pvt.temp_c == 125.0]
    assert all(r.ds_savings > 0.25 for r in hot)


def test_tap_tradeoff_ablation(drv_worst_hot, benchmark):
    """Design-choice ablation: margin vs power across the four Vref taps.

    Higher taps buy retention margin with leakage power; the recommended
    mission tap is the cheapest one whose VDD_CC clears the worst-case DRV
    - the same reasoning the paper applies to the *test* configuration.
    """
    from repro.analysis.tap_tradeoff import (
        recommended_tap,
        render_tap_tradeoff,
        tap_tradeoff,
    )
    from repro.devices.pvt import PVT

    pvt = PVT("typical", 1.1, 125.0)
    points = benchmark.pedantic(
        tap_tradeoff, args=(drv_worst_hot, pvt), rounds=1, iterations=1
    )
    print("\n" + render_tap_tradeoff(points, drv_worst_hot))
    margins = [p.margin for p in points]
    powers = [p.power_w for p in points]
    assert margins == sorted(margins, reverse=True)
    assert powers == sorted(powers, reverse=True)
    best = recommended_tap(points)
    assert best is not None and best.usable
