"""Ablation - the semi-analytic timing layer vs the transient engine.

DESIGN.md substitutes the paper's 1 ms transistor-level transients with a
semi-analytic race model for the timing defects (Df8/Df11) and the DS-time
criterion.  This benchmark quantifies that substitution:

* the VDD_CC discharge trajectory agrees with backward-Euler integration
  of the identical RC + leakage-load circuit within a few percent, at both
  a hot and a cold corner;
* the defective gate line's settling time agrees with the transient
  solution of the same RC within 10%;
* the DS-time sweep (Section V's 1 ms recommendation) shows the paper's
  behaviour: deep supply deficits are caught by microsecond dwells while
  near-DRV deficits need the full millisecond - and the detection
  threshold equals the flip-time model's prediction exactly.
"""

import math

import pytest

from repro.analysis.ds_time import ds_time_sweep, render_ds_time
from repro.analysis.transient_validation import (
    gate_settling_comparison,
    max_relative_error,
    rail_discharge_comparison,
)
from repro.devices.pvt import PVT
from repro.regulator.defects import TimingMode


def test_rail_discharge_validation(benchmark):
    points = benchmark.pedantic(
        rail_discharge_comparison,
        args=(PVT("fs", 1.0, 125.0),),
        kwargs=dict(n_points=10),
        rounds=1, iterations=1,
    )
    error = max_relative_error(points)
    print(f"\nrail-discharge max relative error (hot): {error:.1%}")
    assert error < 0.08


def test_rail_discharge_cold_corner(benchmark):
    points = benchmark.pedantic(
        rail_discharge_comparison,
        args=(PVT("typical", 1.1, 25.0),),
        kwargs=dict(n_points=8),
        rounds=1, iterations=1,
    )
    error = max_relative_error(points)
    print(f"\nrail-discharge max relative error (25C): {error:.1%}")
    assert error < 0.08


@pytest.mark.parametrize("mode", [TimingMode.ACTIVATION_DELAY, TimingMode.UNDERSHOOT])
def test_gate_settling_validation(mode, benchmark):
    point = benchmark.pedantic(
        gate_settling_comparison, args=(100e6, mode), rounds=1, iterations=1
    )
    assert point.simulated == pytest.approx(point.analytic, rel=0.10)


def test_ds_time_recommendation(benchmark):
    """Regenerate the DS-time matrix behind the 'at least 1 ms' advice."""
    deficits = (0.45, 0.60, 0.66, 0.69)
    results = benchmark.pedantic(
        lambda: [ds_time_sweep(vddcc=v, drv=0.70) for v in deficits],
        rounds=1, iterations=1,
    )
    print("\n" + render_ds_time(results))
    minimums = [r.min_effective_ds_time for r in results]
    finite = [m for m in minimums if not math.isinf(m)]
    # Deeper deficits are caught by shorter dwells; the ordering is strict.
    assert finite == sorted(finite)
    # The paper's 1 ms dwell catches everything down to a ~10 mV deficit.
    assert all(m <= 1e-3 for m in minimums[:3])
