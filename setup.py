"""Shim so environments without the `wheel` package can install editable
(`python setup.py develop`); all metadata lives in pyproject.toml."""
from setuptools import setup

setup()
