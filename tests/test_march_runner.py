"""March runner: execution, failure logging, DRF sensitisation."""

import pytest

from repro.march import march_lz, march_m_lz, mats_plus, run_march
from repro.sram import (
    LowPowerSRAM,
    RetentionEngine,
    SRAMConfig,
    StuckAtFault,
    WeakCell,
)

CFG = SRAMConfig(n_words=16, word_bits=8)


class TestBasics:
    def test_fault_free_passes(self, small_config):
        result = run_march(march_m_lz(), LowPowerSRAM(small_config))
        assert result.passed and not result.detected

    def test_operation_count_matches_length(self, small_config):
        test = march_m_lz()
        result = run_march(test, LowPowerSRAM(small_config))
        assert result.operations == test.length(small_config.n_words)

    def test_str_summary(self):
        result = run_march(mats_plus(), LowPowerSRAM(CFG))
        assert "PASS" in str(result)


class TestFailureReporting:
    def test_stuck_at_zero_located(self):
        m = LowPowerSRAM(CFG)
        m.inject(StuckAtFault(5, 3, 0))
        result = run_march(mats_plus(), m)
        assert result.detected
        assert (5, 3) in result.failing_cells()
        first = result.failures[0]
        assert first.expected != first.observed

    def test_failure_records_element(self):
        m = LowPowerSRAM(CFG)
        m.inject(StuckAtFault(5, 3, 0))
        result = run_march(mats_plus(), m)
        # SA0 first observed by the r1 of ME3 (element index 2).
        assert result.failures[0].element_index == 2

    def test_max_failures_cap(self):
        m = LowPowerSRAM(CFG)
        for bit in range(8):
            m.inject(StuckAtFault(0, bit, 1))
        result = run_march(mats_plus(), m, max_failures=3)
        assert len(result.failures) == 3


class TestDRFSensitisation:
    def _weak(self, drv1=0.05, drv0=0.05):
        engine = RetentionEngine([WeakCell(2, 4, drv1=drv1, drv0=drv0)])
        return LowPowerSRAM(CFG, retention=engine)

    def test_drf_on_ones_detected_by_me4(self):
        m = self._weak(drv1=0.70)
        result = run_march(march_m_lz(), m, vddcc_for_sleep=lambda i: 0.50)
        assert result.detected
        assert result.failures[0].element_index == 3  # ME4's r1

    def test_drf_on_zeros_detected_by_me7(self):
        m = self._weak(drv0=0.70)
        result = run_march(march_m_lz(), m, vddcc_for_sleep=lambda i: 0.50)
        assert result.detected
        assert result.failures[0].element_index == 6  # ME7's r0

    def test_march_lz_misses_drf_on_zeros(self):
        """The coverage gap that motivates March m-LZ (Section V)."""
        m = self._weak(drv0=0.70)
        result = run_march(march_lz(), m, vddcc_for_sleep=lambda i: 0.50)
        assert result.passed

    def test_march_lz_catches_drf_on_ones(self):
        m = self._weak(drv1=0.70)
        result = run_march(march_lz(), m, vddcc_for_sleep=lambda i: 0.50)
        assert result.detected

    def test_per_sleep_voltages(self):
        """vddcc_for_sleep is indexed: fail only the second sleep."""
        m = self._weak(drv0=0.70)
        voltages = {0: 0.77, 1: 0.50}
        result = run_march(
            march_m_lz(), m, vddcc_for_sleep=lambda i: voltages[i]
        )
        assert result.detected
        assert result.failures[0].element_index == 6

    def test_healthy_vreg_passes(self):
        m = self._weak(drv1=0.70, drv0=0.70)
        result = run_march(march_m_lz(), m, vddcc_for_sleep=lambda i: 0.77)
        assert result.passed
