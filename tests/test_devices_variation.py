"""Within-die Vth variation model."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.devices.variation import CELL_TRANSISTORS, SIGMA_VTH, CellVariation

sigma_values = st.floats(min_value=-6.0, max_value=6.0, allow_nan=False)
variations = st.builds(
    CellVariation,
    mpcc1=sigma_values, mncc1=sigma_values, mpcc2=sigma_values,
    mncc2=sigma_values, mncc3=sigma_values, mncc4=sigma_values,
)


class TestConstruction:
    def test_symmetric(self):
        v = CellVariation.symmetric()
        assert v.is_symmetric()
        assert v.magnitude() == 0.0

    def test_single(self):
        v = CellVariation.single("mncc3", -2.5)
        assert v.mncc3 == -2.5
        assert sum(abs(x) for _, x in v.items()) == 2.5

    def test_single_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown transistor"):
            CellVariation.single("mncc9", 1.0)

    def test_worst_case_signs(self):
        """Fig. 4 observation 1: the DRV_DS1-maximising sign pattern."""
        v = CellVariation.worst_case_drv1(6.0)
        assert v.mpcc1 == v.mncc1 == v.mncc3 == -6.0
        assert v.mpcc2 == v.mncc2 == v.mncc4 == +6.0

    def test_worst_case_drv0_is_mirror(self):
        assert CellVariation.worst_case_drv0(6.0) == CellVariation.worst_case_drv1(6.0).mirrored()

    def test_sample_reproducible(self):
        a = CellVariation.sample(np.random.default_rng(42))
        b = CellVariation.sample(np.random.default_rng(42))
        assert a == b
        assert not a.is_symmetric()


class TestMirroring:
    @given(variations)
    def test_mirror_is_involution(self, v):
        assert v.mirrored().mirrored() == v

    @given(variations)
    def test_mirror_preserves_magnitude(self, v):
        assert v.mirrored().magnitude() == pytest.approx(v.magnitude())

    def test_mirror_swaps_halves(self):
        v = CellVariation(mpcc1=1, mncc1=2, mpcc2=3, mncc2=4, mncc3=5, mncc4=6)
        m = v.mirrored()
        assert (m.mpcc1, m.mncc1) == (3, 4)
        assert (m.mpcc2, m.mncc2) == (1, 2)
        assert (m.mncc3, m.mncc4) == (6, 5)


class TestOffsets:
    def test_scaling(self):
        v = CellVariation.single("mpcc1", 2.0)
        offsets = v.vth_offsets()
        assert offsets["mpcc1"] == pytest.approx(2.0 * SIGMA_VTH)
        assert offsets["mncc4"] == 0.0

    def test_custom_sigma(self):
        v = CellVariation.single("mncc1", -1.0)
        assert v.vth_offsets(sigma_vth=0.05)["mncc1"] == pytest.approx(-0.05)

    def test_transistor_name_ordering(self):
        assert CELL_TRANSISTORS == (
            "mpcc1", "mncc1", "mpcc2", "mncc2", "mncc3", "mncc4"
        )
