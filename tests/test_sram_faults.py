"""Functional fault models: hooks and detection semantics."""

import numpy as np
import pytest

from repro.sram import (
    CouplingFaultIdempotent,
    CouplingFaultState,
    DataRetentionFault,
    LowPowerSRAM,
    PeripheralPowerGatingFault,
    SRAMConfig,
    StuckAtFault,
    TransitionFault,
    UnvectorizedFaultError,
    drf_ds_variants,
)

CFG = SRAMConfig(n_words=16, word_bits=8)


def _mem(*faults):
    m = LowPowerSRAM(CFG)
    for f in faults:
        m.inject(f)
    return m


class TestStuckAt:
    def test_sa0_forces_zero(self):
        m = _mem(StuckAtFault(3, 1, 0))
        m.write(3, 0xFF)
        assert m.read(3) == 0xFF & ~(1 << 1)

    def test_sa1_forces_one(self):
        m = _mem(StuckAtFault(3, 1, 1))
        m.write(3, 0x00)
        assert m.read(3) == 1 << 1

    def test_other_cells_unaffected(self):
        m = _mem(StuckAtFault(3, 1, 0))
        m.write(5, 0xFF)
        assert m.read(5) == 0xFF

    def test_touches(self):
        f = StuckAtFault(3, 1, 0)
        assert f.touches(3, 1) and not f.touches(3, 2)


class TestTransition:
    def test_rising_blocked(self):
        m = _mem(TransitionFault(2, 0, rising=True))
        m.write(2, 0)
        m.write(2, 1)
        assert m.read(2) == 0  # 0 -> 1 write lost

    def test_falling_still_works_for_rising_fault(self):
        m = _mem(TransitionFault(2, 0, rising=True))
        m.force_bit(2, 0, 1)
        m.write(2, 0)
        assert m.read(2) == 0

    def test_falling_blocked(self):
        m = _mem(TransitionFault(2, 0, rising=False))
        m.force_bit(2, 0, 1)
        m.write(2, 0)
        assert m.read(2) == 1


class TestCoupling:
    def test_idempotent_fires_on_aggressor_transition(self):
        m = _mem(CouplingFaultIdempotent(1, 0, 9, 3, aggressor_rising=True, victim_value=1))
        m.write(9, 0)
        m.write(1, 0)
        m.write(1, 1)  # rising aggressor write
        assert m.read(9) == 1 << 3

    def test_idempotent_quiet_without_transition(self):
        m = _mem(CouplingFaultIdempotent(1, 0, 9, 3, aggressor_rising=True, victim_value=1))
        m.write(9, 0)
        m.write(1, 1)
        m.write(1, 1)  # no transition on the second write
        m.write(9, 0)
        m.write(1, 1)  # still 1 -> 1
        assert m.read(9) == 0

    def test_state_coupling_masks_reads(self):
        m = _mem(CouplingFaultState(1, 0, 9, 3, aggressor_value=1, victim_value=0))
        m.write(9, 0xFF)
        m.write(1, 0)
        assert m.read(9) == 0xFF  # aggressor low: read is honest
        m.write(1, 1)
        assert m.read(9) == 0xFF & ~(1 << 3)  # aggressor high: victim reads 0


class TestPeripheralPowerGating:
    def test_writes_lost_right_after_wakeup(self):
        m = _mem(PeripheralPowerGatingFault(recovery_ops=2))
        m.fill(0xFF)
        m.enter_deep_sleep()
        m.wake_up()
        m.write(0, 0x00)  # within the recovery window: silently lost
        assert m.read(0) == 0xFF

    def test_recovery_window_expires(self):
        m = _mem(PeripheralPowerGatingFault(recovery_ops=2))
        m.fill(0xFF)
        m.enter_deep_sleep()
        m.wake_up()
        m.read(0)
        m.read(0)  # two ops consume the window
        m.write(0, 0x00)
        assert m.read(0) == 0x00

    def test_no_effect_without_sleep(self):
        m = _mem(PeripheralPowerGatingFault(recovery_ops=2))
        m.write(0, 0x12)
        assert m.read(0) == 0x12


class TestFaultManagement:
    def test_clear_faults(self):
        m = _mem(StuckAtFault(0, 0, 1))
        m.clear_faults()
        m.write(0, 0)
        assert m.read(0) == 0

    def test_multiple_faults_compose(self):
        m = _mem(StuckAtFault(0, 0, 1), StuckAtFault(0, 1, 0))
        m.write(0, 0b10)
        assert m.read(0) == 0b01


def _sleep(m, ds_time=1e-3, vddcc=0.1):
    m.enter_deep_sleep(ds_time=ds_time, vddcc=vddcc)
    m.wake_up()


class TestDataRetention:
    def test_scalar_cell_loses_value_through_sleep(self):
        m = _mem(DataRetentionFault(3, 1, lost_value=1))
        m.write(3, 0b10)
        _sleep(m)
        assert m.read(3) == 0

    def test_only_the_lost_value_is_at_risk(self):
        m = _mem(DataRetentionFault(3, 1, lost_value=1))
        m.write(3, 0)  # stores 0: a DRF_DS1 cell holding 0 is safe
        _sleep(m)
        assert m.read(3) == 0

    def test_drv_threshold_gates_the_flip(self):
        m = _mem(DataRetentionFault(3, 1, lost_value=1, drv=0.10))
        m.write(3, 0b10)
        _sleep(m, vddcc=0.15)  # supply above the cell's DRV: retained
        assert m.read(3) == 0b10
        # Below the cell's DRV but above the symmetric floor: only the
        # weakened cell loses data, not the whole array.
        _sleep(m, vddcc=0.08)
        assert m.read(3) == 0

    def test_min_ds_time_models_the_flip_time(self):
        m = _mem(DataRetentionFault(3, 1, lost_value=1, min_ds_time=1e-3))
        m.write(3, 0b10)
        _sleep(m, ds_time=1e-6)  # sleep shorter than the flip time
        assert m.read(3) == 0b10
        _sleep(m, ds_time=1e-3)
        assert m.read(3) == 0

    def test_index_arrays_carry_a_fault_map(self):
        """One object, many cells, per-cell parameters."""
        fault = DataRetentionFault(
            word=[0, 0, 5], bit=[0, 2, 1],
            lost_value=[1, 0, 1], drv=[0.2, 0.2, 0.05],
        )
        m = _mem(fault)
        m.write(0, 0b101)  # bits 0 and 2 set
        m.write(5, 0b010)
        _sleep(m, vddcc=0.1)
        # (0,0) loses its 1; (0,2) keeps its 1 (only a stored 0 at risk);
        # (5,1) survives because the supply stayed above its 50 mV DRV.
        assert m.read(0) == 0b100
        assert m.read(5) == 0b010
        assert fault.touches(5, 1) and not fault.touches(5, 0)

    def test_parameters_broadcast_across_cells(self):
        fault = DataRetentionFault(word=[1, 2, 3], bit=0, lost_value=1)
        m = _mem(fault)
        for addr in (1, 2, 3):
            m.write(addr, 1)
        _sleep(m)
        assert all(m.read(addr) == 0 for addr in (1, 2, 3))

    def test_act_mode_accesses_undisturbed(self):
        m = _mem(DataRetentionFault(3, 1, lost_value=1))
        m.write(3, 0b10)
        assert m.read(3) == 0b10  # no sleep, no loss


class TestDrfVariants:
    def test_word_bit_keywords(self):
        variants = dict(drf_ds_variants(word=4, bit=2))
        fault = variants["DRF_DS1"]()
        assert fault.touches(4, 2)

    def test_addr_is_the_historical_alias(self):
        """``addr=`` must mean the word index, same as ``word=``."""
        via_addr = dict(drf_ds_variants(addr=4, bit=2))["DRF_DS0"]()
        via_word = dict(drf_ds_variants(word=4, bit=2))["DRF_DS0"]()
        assert via_addr.touches(4, 2) and via_word.touches(4, 2)
        assert via_addr.lost_value == via_word.lost_value == 0

    def test_four_variants_cover_the_model(self):
        labels = [label for label, _ in drf_ds_variants(word=0, bit=0)]
        assert labels == ["DRF_DS1", "DRF_DS0", "DRF_DS1_slow", "DRF_DS0_slow"]

    def test_slow_variants_need_the_full_ds_time(self):
        fault = dict(drf_ds_variants(word=0, bit=0, ds_time=1e-3))[
            "DRF_DS1_slow"
        ]()
        m = _mem(fault)
        m.write(0, 1)
        _sleep(m, ds_time=1e-6)
        assert m.read(0) == 1
        _sleep(m, ds_time=1e-3)
        assert m.read(0) == 0


class TestPlaneProtocol:
    def test_plane_capable_gating(self):
        assert _mem(StuckAtFault(0, 0, 1)).plane_capable
        assert _mem(TransitionFault(0, 0)).plane_capable
        assert _mem(DataRetentionFault(0, 0)).plane_capable
        assert _mem(PeripheralPowerGatingFault()).plane_capable
        assert not _mem(CouplingFaultIdempotent(0, 0, 1, 0)).plane_capable
        assert not _mem(CouplingFaultState(0, 0, 1, 0)).plane_capable

    def test_plane_ops_reject_unvectorized_faults(self):
        """``write_all``/``read_all`` must refuse rather than silently skip
        a fault that has no plane implementation."""
        m = _mem(CouplingFaultIdempotent(0, 0, 1, 0))
        with pytest.raises(UnvectorizedFaultError):
            m.write_all(0)
        with pytest.raises(UnvectorizedFaultError):
            m.read_all()

    def test_write_plane_matches_scalar_writes(self):
        """The plane hook and the per-word hook agree cell by cell."""
        def build():
            return _mem(
                StuckAtFault(1, 3, 1),
                StuckAtFault(4, 0, 0),
                TransitionFault(2, 2, rising=True),
            )

        scalar = build()
        for addr in range(CFG.n_words):
            scalar.write(addr, 0)
        for addr in range(CFG.n_words):
            scalar.write(addr, CFG.word_mask)

        plane = build()
        plane.write_all(0)
        plane.write_all(CFG.word_mask)

        assert np.array_equal(scalar.peek_plane(), plane.peek_plane())

    def test_read_plane_matches_scalar_reads(self):
        def build():
            m = _mem(StuckAtFault(1, 3, 0), StuckAtFault(6, 7, 1))
            for addr in range(CFG.n_words):
                m.write(addr, 0b1010)
            return m

        scalar = build()
        expected = [scalar.read(addr) for addr in range(CFG.n_words)]
        observed = build().read_all()
        got = [
            int(sum(int(b) << i for i, b in enumerate(row)))
            for row in observed
        ]
        assert got == expected

    def test_ppg_plane_requires_element_bracket(self):
        """PPG's lost-write accounting only makes sense inside a march
        element bracket; a bare plane op must fail loudly."""
        m = _mem(PeripheralPowerGatingFault(recovery_ops=2))
        m.enter_deep_sleep(ds_time=1e-6, vddcc=0.5)
        m.wake_up()
        with pytest.raises(UnvectorizedFaultError):
            m.write_all(0)
