"""Functional fault models: hooks and detection semantics."""

import pytest

from repro.sram import (
    CouplingFaultIdempotent,
    CouplingFaultState,
    LowPowerSRAM,
    PeripheralPowerGatingFault,
    SRAMConfig,
    StuckAtFault,
    TransitionFault,
)

CFG = SRAMConfig(n_words=16, word_bits=8)


def _mem(*faults):
    m = LowPowerSRAM(CFG)
    for f in faults:
        m.inject(f)
    return m


class TestStuckAt:
    def test_sa0_forces_zero(self):
        m = _mem(StuckAtFault(3, 1, 0))
        m.write(3, 0xFF)
        assert m.read(3) == 0xFF & ~(1 << 1)

    def test_sa1_forces_one(self):
        m = _mem(StuckAtFault(3, 1, 1))
        m.write(3, 0x00)
        assert m.read(3) == 1 << 1

    def test_other_cells_unaffected(self):
        m = _mem(StuckAtFault(3, 1, 0))
        m.write(5, 0xFF)
        assert m.read(5) == 0xFF

    def test_touches(self):
        f = StuckAtFault(3, 1, 0)
        assert f.touches(3, 1) and not f.touches(3, 2)


class TestTransition:
    def test_rising_blocked(self):
        m = _mem(TransitionFault(2, 0, rising=True))
        m.write(2, 0)
        m.write(2, 1)
        assert m.read(2) == 0  # 0 -> 1 write lost

    def test_falling_still_works_for_rising_fault(self):
        m = _mem(TransitionFault(2, 0, rising=True))
        m.force_bit(2, 0, 1)
        m.write(2, 0)
        assert m.read(2) == 0

    def test_falling_blocked(self):
        m = _mem(TransitionFault(2, 0, rising=False))
        m.force_bit(2, 0, 1)
        m.write(2, 0)
        assert m.read(2) == 1


class TestCoupling:
    def test_idempotent_fires_on_aggressor_transition(self):
        m = _mem(CouplingFaultIdempotent(1, 0, 9, 3, aggressor_rising=True, victim_value=1))
        m.write(9, 0)
        m.write(1, 0)
        m.write(1, 1)  # rising aggressor write
        assert m.read(9) == 1 << 3

    def test_idempotent_quiet_without_transition(self):
        m = _mem(CouplingFaultIdempotent(1, 0, 9, 3, aggressor_rising=True, victim_value=1))
        m.write(9, 0)
        m.write(1, 1)
        m.write(1, 1)  # no transition on the second write
        m.write(9, 0)
        m.write(1, 1)  # still 1 -> 1
        assert m.read(9) == 0

    def test_state_coupling_masks_reads(self):
        m = _mem(CouplingFaultState(1, 0, 9, 3, aggressor_value=1, victim_value=0))
        m.write(9, 0xFF)
        m.write(1, 0)
        assert m.read(9) == 0xFF  # aggressor low: read is honest
        m.write(1, 1)
        assert m.read(9) == 0xFF & ~(1 << 3)  # aggressor high: victim reads 0


class TestPeripheralPowerGating:
    def test_writes_lost_right_after_wakeup(self):
        m = _mem(PeripheralPowerGatingFault(recovery_ops=2))
        m.fill(0xFF)
        m.enter_deep_sleep()
        m.wake_up()
        m.write(0, 0x00)  # within the recovery window: silently lost
        assert m.read(0) == 0xFF

    def test_recovery_window_expires(self):
        m = _mem(PeripheralPowerGatingFault(recovery_ops=2))
        m.fill(0xFF)
        m.enter_deep_sleep()
        m.wake_up()
        m.read(0)
        m.read(0)  # two ops consume the window
        m.write(0, 0x00)
        assert m.read(0) == 0x00

    def test_no_effect_without_sleep(self):
        m = _mem(PeripheralPowerGatingFault(recovery_ops=2))
        m.write(0, 0x12)
        assert m.read(0) == 0x12


class TestFaultManagement:
    def test_clear_faults(self):
        m = _mem(StuckAtFault(0, 0, 1))
        m.clear_faults()
        m.write(0, 0)
        assert m.read(0) == 0

    def test_multiple_faults_compose(self):
        m = _mem(StuckAtFault(0, 0, 1), StuckAtFault(0, 1, 0))
        m.write(0, 0b10)
        assert m.read(0) == 0b01
