"""Tap margin/power trade-off ablation."""

import math

import pytest

from repro.analysis.tap_tradeoff import (
    recommended_tap,
    render_tap_tradeoff,
    tap_tradeoff,
)
from repro.devices.pvt import PVT
from repro.regulator import VrefSelect

HOT = PVT("typical", 1.1, 125.0)


@pytest.fixture(scope="module")
def points():
    return tap_tradeoff(drv_worst=0.70, pvt=HOT)


class TestTradeoff:
    def test_four_taps(self, points):
        assert [p.vrefsel for p in points] == list(VrefSelect)

    def test_margin_ordering(self, points):
        """Higher taps give more margin and cost more power."""
        margins = [p.margin for p in points]
        assert margins == sorted(margins, reverse=True)
        powers = [p.power_w for p in points]
        assert powers == sorted(powers, reverse=True)

    def test_usability_flag(self, points):
        """At VDD=1.1 and DRV 0.70 V, the 0.64 tap (0.704 V) is marginal."""
        by_tap = {p.vrefsel: p for p in points}
        assert by_tap[VrefSelect.VREF78].usable
        assert by_tap[VrefSelect.VREF70].usable

    def test_flip_time_infinite_when_usable(self, points):
        for p in points:
            if p.usable:
                assert math.isinf(p.worst_cell_flip_time)

    def test_recommendation_is_cheapest_usable(self, points):
        best = recommended_tap(points)
        assert best is not None and best.usable
        for p in points:
            if p.usable:
                assert best.power_w <= p.power_w

    def test_no_usable_tap(self):
        points = tap_tradeoff(drv_worst=2.0, pvt=HOT)
        assert recommended_tap(points) is None
        assert "NO usable tap" in render_tap_tradeoff(points, 2.0)

    def test_render(self, points):
        text = render_tap_tradeoff(points, 0.70)
        assert "margin" in text and "uW" in text and "recommend" in text
