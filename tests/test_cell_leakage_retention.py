"""Hold-state leakage and the flip-time retention model."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cell import array_leakage_current, cell_leakage_current, flip_time, retains
from repro.devices import CellVariation


class TestLeakage:
    def test_positive_and_tiny(self):
        leak = cell_leakage_current(0.77)
        assert 0 < leak < 1e-9  # picoamp-scale per cell at room temp

    def test_grows_with_voltage(self):
        v = np.linspace(0.2, 1.2, 11)
        leak = cell_leakage_current(v)
        assert np.all(np.diff(leak) > 0)

    def test_grows_steeply_with_temperature(self):
        room = cell_leakage_current(0.77, temp_c=25.0)
        hot = cell_leakage_current(0.77, temp_c=125.0)
        assert hot / room > 50

    def test_array_scaling(self):
        one = cell_leakage_current(0.7)
        array = array_leakage_current(0.7, n_cells=4096 * 64)
        assert array == pytest.approx(one * 4096 * 64, rel=1e-9)

    def test_vector_and_scalar_agree(self):
        vec = cell_leakage_current(np.array([0.5, 0.7]))
        assert cell_leakage_current(0.5) == pytest.approx(vec[0])
        assert cell_leakage_current(0.7) == pytest.approx(vec[1])

    def test_asymmetric_cell_leaks_differently(self):
        sym = cell_leakage_current(0.7)
        weak = cell_leakage_current(0.7, CellVariation(mncc1=-4, mncc3=-4))
        assert weak > sym  # lower-Vth pulldown/pass leak more


class TestFlipTime:
    def test_infinite_at_or_above_drv(self):
        assert flip_time(0.7, 0.7) == math.inf
        assert flip_time(0.75, 0.7) == math.inf

    def test_zero_at_zero_supply(self):
        assert flip_time(0.0, 0.7) == 0.0
        assert flip_time(-0.1, 0.7) == 0.0

    def test_diverges_near_drv(self):
        near = flip_time(0.699, 0.7)
        far = flip_time(0.4, 0.7)
        assert near > 100 * far

    @settings(max_examples=25, deadline=None)
    @given(st.floats(0.15, 0.65))
    def test_monotone_decreasing_below_drv(self, v):
        """Monotone within the model's validity band (see retention.py).

        Below ~0.1 V the leakage collapses faster than the stored charge,
        so the C*v/I estimate turns back up - outside the band where test
        decisions are ever made (Vreg failures land well above it or at
        bulk-loss levels where the flip is immediate either way).
        """
        drv = 0.7
        lower = flip_time(max(v - 0.04, 0.01), drv)
        here = flip_time(v, drv)
        assert lower <= here * 1.0001

    def test_hot_cells_flip_faster(self):
        room = flip_time(0.5, 0.7, temp_c=25.0)
        hot = flip_time(0.5, 0.7, temp_c=125.0)
        assert hot < room / 10

    def test_paper_ds_time_discrimination(self):
        """Near-DRV cells need >= 1 ms of deep sleep to be caught."""
        drv = 0.7
        t_deep = flip_time(0.45, drv)   # well below DRV
        t_near = flip_time(0.693, drv)  # 7 mV below DRV
        assert t_deep < 1e-3            # detected within the paper's DS time
        assert t_near > 1e-4            # near-DRV flips take much longer


class TestRetains:
    def test_retains_above_drv(self):
        assert retains(0.75, 0.7, ds_time=10.0)

    def test_loses_below_drv_given_time(self):
        assert not retains(0.45, 0.7, ds_time=1e-3)

    def test_short_sleep_may_retain(self):
        v, drv = 0.693, 0.7
        needed = flip_time(v, drv)
        assert retains(v, drv, ds_time=needed / 10)
        assert not retains(v, drv, ds_time=needed * 10)
