"""Power-savings analysis and Monte Carlo DRV statistics."""

import numpy as np
import pytest

from repro.analysis.montecarlo import drv_distribution
from repro.analysis.power_savings import (
    power_comparison,
    render_power,
    worst_case_defective_savings,
)
from repro.devices.pvt import PVT

HOT = [PVT("typical", 1.1, 125.0)]


class TestPowerComparison:
    @pytest.fixture(scope="class")
    def results(self):
        return power_comparison(pvt_grid=HOT)

    def test_paper_claim_over_30_percent(self, results):
        assert worst_case_defective_savings(results) > 0.30

    def test_healthy_ds_beats_defective(self, results):
        r = results[0]
        assert r.ds_w < r.ds_defective_w

    def test_healthy_ds_saves_at_high_temperature(self, results):
        assert results[0].ds_savings > 0.25

    def test_render(self, results):
        text = render_power(results)
        assert ">30%" in text and "ACT idle" in text


class TestMonteCarlo:
    @pytest.fixture(scope="class")
    def result(self):
        return drv_distribution(n_samples=12, seed=5)

    def test_sample_statistics(self, result):
        assert result.samples.shape == (12,)
        assert np.all(result.samples >= 0.02)
        assert result.std > 0

    def test_quantiles_ordered(self, result):
        assert result.quantile(0.1) <= result.quantile(0.5) <= result.quantile(0.9)

    def test_array_drv_grows_with_size(self, result):
        """Section III: array DRV is set by the least stable cell."""
        small_mean, _ = result.array_drv(16, n_boot=50)
        large_mean, _ = result.array_drv(4096, n_boot=50)
        assert large_mean >= small_mean

    def test_reproducible(self):
        a = drv_distribution(n_samples=4, seed=9)
        b = drv_distribution(n_samples=4, seed=9)
        assert np.allclose(a.samples, b.samples)
