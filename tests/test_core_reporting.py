"""Table renderers."""

from repro.core.reporting import drv_cell, render_table, resistance_cell


class TestRenderTable:
    def test_alignment(self):
        text = render_table(
            ["name", "value"],
            [["a", 1], ["longer", 22]],
            title="demo",
        )
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert all(len(line) == len(lines[1]) for line in lines[1:])
        assert "longer" in text

    def test_no_title(self):
        text = render_table(["x"], [["1"]])
        assert text.splitlines()[0].startswith("x")


class TestCells:
    def test_resistance_formats(self):
        assert resistance_cell(9760) == "9.76K"
        assert resistance_cell(None) == "> 500M"
        assert resistance_cell(0.0) == "config-invalid"

    def test_drv_formats(self):
        assert drv_cell(0.730) == "730mV"
        assert drv_cell(0.064) == "~64mV"
