"""Regulator design parameters and tap selection."""

import pytest

from repro.regulator import VREF_TAPS, VrefSelect
from repro.regulator.design import DEFAULT_REGULATOR, RegulatorDesign


class TestDivider:
    def test_sections_sum_to_total(self):
        design = RegulatorDesign()
        total = sum(design.divider_sections().values())
        assert total == pytest.approx(design.divider_total)

    def test_tap_fractions_from_sections(self):
        """Walking the chain reproduces the paper's tap fractions."""
        design = RegulatorDesign(divider_total=1.0)
        sections = design.divider_sections()
        remaining = 1.0
        fractions = []
        for name in ("r1", "r2", "r3", "r4", "r5"):
            remaining -= sections[name]
            fractions.append(round(remaining, 10))
        assert fractions == [0.78, 0.74, 0.70, 0.64, 0.52]

    def test_paper_tap_constants(self):
        assert VREF_TAPS == (0.78, 0.74, 0.70, 0.64, 0.52)


class TestVrefSelect:
    def test_fractions(self):
        assert {sel.fraction for sel in VrefSelect} == {0.78, 0.74, 0.70, 0.64}

    def test_tap_nodes(self):
        assert VrefSelect.VREF74.tap_node == "vref74"
        assert VrefSelect.VREF64.tap_node == "vref64"

    @pytest.mark.parametrize(
        "vdd, expected, vreg",
        [
            (1.0, VrefSelect.VREF74, 0.740),
            (1.1, VrefSelect.VREF70, 0.770),
            (1.2, VrefSelect.VREF64, 0.768),
        ],
    )
    def test_closest_at_or_above_reproduces_table_iii(self, vdd, expected, vreg):
        """The paper's configuration rule yields the Table III tap ladder."""
        sel = VrefSelect.closest_at_or_above(0.730, vdd)
        assert sel is expected
        assert sel.fraction * vdd == pytest.approx(vreg, abs=1e-9)

    def test_falls_back_to_highest_tap(self):
        assert VrefSelect.closest_at_or_above(2.0, 1.0) is VrefSelect.VREF78


class TestDeviceParams:
    def test_all_seven_transistors(self):
        params = DEFAULT_REGULATOR.device_params()
        assert set(params) == {
            "mnreg1", "mnreg2", "mnreg3", "mpreg1", "mpreg2", "mpreg3", "mpreg4"
        }

    def test_polarities(self):
        params = DEFAULT_REGULATOR.device_params()
        assert all(params[k].polarity == "n" for k in ("mnreg1", "mnreg2", "mnreg3"))
        assert all(params[k].polarity == "p" for k in ("mpreg1", "mpreg2", "mpreg3", "mpreg4"))

    def test_only_output_device_has_gate_leak(self):
        params = DEFAULT_REGULATOR.device_params()
        assert params["mpreg1"].gate_leak_density > 0
        for name in ("mnreg1", "mnreg2", "mnreg3", "mpreg2", "mpreg3", "mpreg4"):
            assert params[name].gate_leak_density == 0.0

    def test_amp_devices_are_low_vth(self):
        params = DEFAULT_REGULATOR.device_params()
        assert params["mnreg1"].vth == DEFAULT_REGULATOR.amp_vth
        assert params["mnreg1"].vth < params["mpreg1"].vth
