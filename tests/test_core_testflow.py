"""Test-flow machinery: configs, detection matrix, optimiser.

The optimiser logic is exercised on synthetic matrices (no circuit solves),
so every branch is cheap and deterministic; the electrically-derived flow is
covered by the integration test and the Table III benchmark.
"""

import pytest

from repro.core.testflow import (
    DetectionMatrix,
    TestConfig,
    TestFlow,
    TestIteration,
    all_test_configs,
    optimize_flow,
    paper_flow,
)
from repro.regulator import VrefSelect


def _config(vdd, sel):
    return TestConfig(vdd, sel)


def _matrix(entries, drv=0.706):
    m = DetectionMatrix(drv_worst=drv)
    m.entries.update(entries)
    return m


def _ladder_matrix():
    """Synthetic matrix mimicking the electrical results:

    * Df1 detectable everywhere Vreg is valid, best at the lowest margin;
    * Df3 only below its divider position (taps 0.70/0.64);
    * Df4 only at tap 0.64;
    * configs whose Vreg target sits below the worst-case DRV are invalid.
    """
    drv = 0.706
    entries = {}
    for config in all_test_configs():
        margin = config.vreg_expected - drv
        if margin < 0:
            for d in (1, 3, 4):
                entries[(d, config)] = 0.0
            continue
        entries[(1, config)] = 1e4 * (1 + 20 * margin)
        entries[(3, config)] = (
            2e4 * (1 + 20 * margin)
            if config.vrefsel in (VrefSelect.VREF70, VrefSelect.VREF64)
            else None
        )
        entries[(4, config)] = (
            3e4 * (1 + 20 * margin)
            if config.vrefsel is VrefSelect.VREF64
            else None
        )
    return _matrix(entries, drv)


class TestTestConfig:
    def test_vreg_expected(self):
        assert _config(1.1, VrefSelect.VREF70).vreg_expected == pytest.approx(0.77)

    def test_pvt_binds_test_corner(self):
        pvt = _config(1.2, VrefSelect.VREF64).pvt
        assert pvt.corner == "fs" and pvt.temp_c == 125.0 and pvt.vdd == 1.2

    def test_label(self):
        label = _config(1.0, VrefSelect.VREF74).label()
        assert "0.740V" in label and "1ms" in label

    def test_all_configs_is_12(self):
        configs = all_test_configs()
        assert len(configs) == 12
        assert len({(c.vdd, c.vrefsel) for c in configs}) == 12


class TestDetectionMatrix:
    def test_valid_configs_exclude_baseline_failures(self):
        m = _ladder_matrix()
        valid = m.valid_configs()
        assert _config(1.0, VrefSelect.VREF64) not in valid  # 0.64 < DRV
        assert _config(1.0, VrefSelect.VREF74) in valid
        assert len(valid) == 9

    def test_detectable(self):
        m = _ladder_matrix()
        assert m.detectable(1) and m.detectable(4)
        m.entries[(9, _config(1.0, VrefSelect.VREF74))] = None
        assert not m.detectable(9)

    def test_maximizing_configs_factor(self):
        m = _ladder_matrix()
        best = m.maximizing_configs(1, factor=1.05)
        # Smallest margin above DRV: VDD=1.0 / 0.74 (Vreg = 0.740).
        assert best == {_config(1.0, VrefSelect.VREF74)}

    def test_maximizing_excludes_invalid(self):
        m = _ladder_matrix()
        for configs in m.maximizing_configs(4, factor=10.0),:
            assert all(c in m.valid_configs() for c in configs)


class TestOptimizer:
    def test_reproduces_table_iii_ladder(self):
        flow = optimize_flow(_ladder_matrix())
        picks = [(it.config.vdd, it.config.vrefsel) for it in flow.iterations]
        assert picks == [
            (1.0, VrefSelect.VREF74),
            (1.1, VrefSelect.VREF70),
            (1.2, VrefSelect.VREF64),
        ]

    def test_every_defect_maximised_once(self):
        m = _ladder_matrix()
        flow = optimize_flow(m)
        picked = {it.config for it in flow.iterations}
        for d in (1, 3, 4):
            assert m.maximizing_configs(d) & picked

    def test_75_percent_reduction(self):
        flow = optimize_flow(_ladder_matrix())
        assert flow.time_reduction() == pytest.approx(0.75, abs=1e-6)

    def test_rejects_empty_matrix(self):
        with pytest.raises(ValueError):
            optimize_flow(_matrix({(1, _config(1.0, VrefSelect.VREF64)): 0.0}))

    def test_iteration_reports_detected_set(self):
        flow = optimize_flow(_ladder_matrix())
        final = flow.iterations[-1]
        assert set(final.detected_defects) == {1, 3, 4}


class TestTestFlowAccounting:
    def test_test_time_includes_ds_dwell(self):
        flow = paper_flow(ds_time=1e-3)
        t = flow.test_time(n_words=4096, cycle_time=10e-9)
        march_ops = 3 * (5 * 4096 + 4) * 10e-9
        dwell = 3 * 2 * 1e-3
        assert t == pytest.approx(march_ops + dwell, rel=1e-9)

    def test_paper_flow_structure(self):
        flow = paper_flow()
        assert len(flow.iterations) == 3
        assert flow.time_reduction() == pytest.approx(0.75)
        vregs = [round(it.config.vreg_expected, 3) for it in flow.iterations]
        assert vregs == [0.740, 0.770, 0.768]

    def test_covered_defects_union(self):
        flow = TestFlow(
            iterations=[
                TestIteration(_config(1.0, VrefSelect.VREF74), (1,), (1, 2)),
                TestIteration(_config(1.1, VrefSelect.VREF70), (3,), (3,)),
            ]
        )
        assert flow.covered_defects() == {1, 2, 3}

    def test_str_rendering(self):
        text = str(paper_flow())
        assert "3 iterations" in text and "75%" in text
