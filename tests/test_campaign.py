"""The sweep-campaign engine: specs, cache, executor, resume, parallel runs."""

import json
import os
import signal
import time

import pytest

from repro import chaos
from repro.campaign import (
    BackoffPolicy,
    Executor,
    ResultCache,
    SweepSpec,
    TaskPoint,
    TaskRecord,
    run_campaign,
    task,
)
from repro.campaign.cache import RESULTS_FILENAME
from repro.devices.pvt import PVT
from repro.spice import ConvergenceError

ONE_PVT = (PVT("fs", 1.0, 125.0),)


# --- toy task kinds (registered once at import; cheap and deterministic) ---

@task("toy-square")
def _toy_square(params, context):
    return {"y": params["x"] ** 2 + context.get("offset", 0)}


@task("toy-converge")
def _toy_converge(params, context):
    if params["x"] == 2:
        raise ConvergenceError("operating point on the crowbar transition")
    return {"y": params["x"]}


@task("toy-flaky")
def _toy_flaky(params, context):
    marker = os.path.join(params["scratch"], f"attempted-{params['x']}")
    if not os.path.exists(marker):
        open(marker, "w").close()
        raise RuntimeError("transient worker hiccup")
    return {"y": params["x"]}


@task("toy-interruptible")
def _toy_interruptible(params, context):
    if params["x"] >= 3 and os.path.exists(params["flag"]):
        raise KeyboardInterrupt
    return {"y": params["x"]}


@task("toy-exit")
def _toy_exit(params, context):
    # The poison point kills its worker outright - no exception, no
    # cleanup - exactly like a segfault or the OOM killer.
    if params["x"] == context.get("poison"):
        os._exit(chaos.CRASH_EXIT_CODE)
    return {"y": params["x"] ** 2}


@task("toy-sleep")
def _toy_sleep(params, context):
    # A hang in code the worker-side watchdog cannot see (time.sleep
    # never calls watchdog.check): only the parent-side chunk budget
    # can recover this one.
    if params["x"] == context.get("sleepy"):
        time.sleep(60.0)
    return {"y": params["x"]}


@task("toy-sigint")
def _toy_sigint(params, context):
    if params["x"] == context.get("fire_at"):
        os.kill(os.getpid(), signal.SIGINT)
        time.sleep(0.05)  # let the (flag-setting) handler run
    return {"y": params["x"]}


@task("toy-badcall")
def _toy_badcall(params, context):
    raise ValueError("deterministically bad parameters")


def square_spec(n=6, offset=0, seed=None):
    tasks = [TaskPoint.make("toy-square", x=i) for i in range(n)]
    context = {"offset": offset} if offset else {}
    return SweepSpec.build("toy", tasks, context=context, seed=seed)


class TestTaskPoint:
    def test_key_independent_of_param_order(self):
        a = TaskPoint.make("k", alpha=1, beta=2.5)
        b = TaskPoint.make("k", beta=2.5, alpha=1)
        assert a == b and a.key == b.key

    def test_key_separates_kind_and_params(self):
        base = TaskPoint.make("k", x=1)
        assert base.key != TaskPoint.make("k2", x=1).key
        assert base.key != TaskPoint.make("k", x=2).key

    def test_nested_sequences_freeze_hashable(self):
        p = TaskPoint.make("k", grid=[["fs", 1.0, 125.0], ["sf", 1.1, -30.0]])
        assert hash(p) is not None
        assert p.param("grid") == (("fs", 1.0, 125.0), ("sf", 1.1, -30.0))


class TestFingerprint:
    def test_context_changes_fingerprint(self):
        assert square_spec().fingerprint() != square_spec(offset=1).fingerprint()

    def test_seed_changes_fingerprint(self):
        assert square_spec(seed=1).fingerprint() != square_spec(seed=2).fingerprint()

    def test_stable_across_builds(self):
        assert square_spec().fingerprint() == square_spec().fingerprint()

    def test_solver_backend_changes_fingerprint(self):
        from repro.spice import using_backend

        with using_backend("compiled"):
            compiled_fp = square_spec().fingerprint()
        with using_backend("reference"):
            reference_fp = square_spec().fingerprint()
        assert compiled_fp != reference_fp

    def test_flipping_backend_invalidates_cache(self, tmp_path):
        from repro.spice import using_backend

        with using_backend("compiled"):
            first = run_campaign(square_spec(4), cache_dir=str(tmp_path))
            assert first.summary.executed == 4
        with using_backend("reference"):
            flipped = run_campaign(square_spec(4), cache_dir=str(tmp_path))
            assert flipped.summary.cache_hits == 0
            assert flipped.summary.executed == 4
        # Re-running on the same backend hits the refreshed entries.
        with using_backend("reference"):
            again = run_campaign(square_spec(4), cache_dir=str(tmp_path))
            assert again.summary.cache_hits == 4 and again.summary.executed == 0


class TestCacheHitMiss:
    def test_second_run_all_hits(self, tmp_path):
        spec = square_spec(8)
        first = run_campaign(spec, cache_dir=str(tmp_path))
        assert first.summary.executed == 8 and first.summary.cache_hits == 0
        second = run_campaign(spec, cache_dir=str(tmp_path))
        assert second.summary.executed == 0 and second.summary.cache_hits == 8
        assert second.summary.cache_hit_rate == 1.0
        for point in spec.tasks:
            assert second.value_for(point) == first.value_for(point)

    def test_fingerprint_invalidates_stale_entries(self, tmp_path):
        run_campaign(square_spec(4), cache_dir=str(tmp_path))
        shifted = run_campaign(square_spec(4, offset=10), cache_dir=str(tmp_path))
        assert shifted.summary.cache_hits == 0 and shifted.summary.executed == 4
        assert shifted.value_for(shifted.spec.tasks[0])["y"] == 10

    def test_growing_the_grid_reuses_the_overlap(self, tmp_path):
        run_campaign(square_spec(4), cache_dir=str(tmp_path))
        grown = run_campaign(square_spec(10), cache_dir=str(tmp_path))
        assert grown.summary.cache_hits == 4 and grown.summary.executed == 6


class TestResume:
    def test_interrupt_checkpoints_then_resumes(self, tmp_path):
        flag = tmp_path / "interrupt-now"
        flag.touch()
        tasks = [
            TaskPoint.make("toy-interruptible", x=i, flag=str(flag))
            for i in range(6)
        ]
        spec = SweepSpec.build("interruptible", tasks)
        cache_dir = str(tmp_path / "cache")
        executor = Executor(jobs=1, chunksize=1)
        with pytest.raises(KeyboardInterrupt):
            executor.run(spec, ResultCache(cache_dir))
        flag.unlink()
        resumed = run_campaign(spec, cache_dir=cache_dir)
        assert resumed.summary.cache_hits == 3  # x = 0, 1, 2 checkpointed
        assert resumed.summary.executed == 3
        assert [resumed.value_for(p)["y"] for p in tasks] == list(range(6))

    def test_truncated_checkpoint_tail_tolerated(self, tmp_path):
        spec = square_spec(5)
        run_campaign(spec, cache_dir=str(tmp_path))
        store = tmp_path / RESULTS_FILENAME
        with store.open("a", encoding="utf-8") as fh:
            fh.write('{"key": "deadbeef", "fingerp')  # killed mid-write
        again = run_campaign(spec, cache_dir=str(tmp_path))
        assert again.summary.cache_hits == 5


class TestFailurePolicy:
    def test_convergence_error_recorded_not_fatal(self, tmp_path):
        tasks = [TaskPoint.make("toy-converge", x=i) for i in range(4)]
        spec = SweepSpec.build("converge", tasks)
        result = run_campaign(spec, cache_dir=str(tmp_path))
        assert result.summary.failures == 1
        assert result.summary.completed == 4  # the sweep finished
        failed = result.record_for(tasks[2])
        assert not failed.ok and "ConvergenceError" in failed.error
        assert result.value_for(tasks[2]) is None
        assert result.value_for(tasks[3]) == {"y": 3}

    def test_recorded_failure_is_a_cache_hit_by_default(self, tmp_path):
        tasks = [TaskPoint.make("toy-converge", x=2)]
        spec = SweepSpec.build("converge", tasks)
        run_campaign(spec, cache_dir=str(tmp_path))
        again = run_campaign(spec, cache_dir=str(tmp_path))
        assert again.summary.cache_hits == 1 and again.summary.failures == 1
        rerun = run_campaign(
            spec, cache_dir=str(tmp_path), rerun_failures=True
        )
        assert rerun.summary.executed == 1

    def test_transient_errors_retried(self, tmp_path):
        tasks = [
            TaskPoint.make("toy-flaky", x=i, scratch=str(tmp_path))
            for i in range(3)
        ]
        spec = SweepSpec.build("flaky", tasks)
        result = run_campaign(spec, retries=1)
        assert result.summary.failures == 0
        assert all(result.record_for(p).attempts == 2 for p in tasks)

    def test_exhausted_retries_recorded(self, tmp_path):
        tasks = [TaskPoint.make("toy-flaky", x=0, scratch=str(tmp_path))]
        result = run_campaign(SweepSpec.build("flaky", tasks), retries=0)
        assert result.summary.failures == 1
        assert "RuntimeError" in result.record_for(tasks[0]).error


class TestCacheStore:
    def test_records_round_trip_as_json_lines(self, tmp_path):
        cache = ResultCache(tmp_path)
        record = TaskRecord(
            key="k1", kind="toy-square", params={"x": 1},
            fingerprint="fp", value={"y": 1}, elapsed=0.25,
        )
        cache.append([record])
        lines = (tmp_path / RESULTS_FILENAME).read_text().splitlines()
        assert json.loads(lines[0])["value"] == {"y": 1}
        fresh = ResultCache(tmp_path)
        assert fresh.lookup("k1", "fp") == record
        assert fresh.lookup("k1", "other-fp") is None


class TestCacheLock:
    def test_append_blocks_on_contention_and_counts_it(self, tmp_path):
        import threading

        fcntl = pytest.importorskip("fcntl")
        from repro import obs
        from repro.campaign.cache import LOCK_FILENAME

        cache = ResultCache(tmp_path)
        record = TaskRecord(key="k1", kind="toy-square", fingerprint="fp")
        # A rival writer (daemon, concurrent CLI run) holds the advisory
        # lock; our append must wait for it, and the blocked acquisition
        # must surface as the cache.lock.contention counter.
        rival = (tmp_path / LOCK_FILENAME).open("a")
        fcntl.flock(rival, fcntl.LOCK_EX)
        release = threading.Timer(0.1, lambda: (
            fcntl.flock(rival, fcntl.LOCK_UN), rival.close()
        ))
        release.start()
        try:
            with obs.recording() as recorder:
                cache.append([record])
        finally:
            release.join()
        assert recorder.counters.get("cache.lock.contention") == 1
        assert ResultCache(tmp_path).lookup("k1", "fp") is not None

    def test_uncontended_append_does_not_count(self, tmp_path):
        from repro import obs

        cache = ResultCache(tmp_path)
        with obs.recording() as recorder:
            cache.append([TaskRecord(key="k1", kind="t", fingerprint="fp")])
            cache.compact()
        assert "cache.lock.contention" not in recorder.counters


class TestExecutorValidation:
    def test_rejects_nonpositive_jobs(self):
        with pytest.raises(ValueError):
            Executor(jobs=0)

    def test_unknown_kind_is_a_recorded_failure(self):
        spec = SweepSpec.build("nope", [TaskPoint.make("no-such-kind", x=1)])
        result = run_campaign(spec, retries=0)
        assert result.summary.failures == 1
        assert "KeyError" in result.failures[0].error


@pytest.mark.slow
class TestParallelEqualsSerial:
    def test_table2_rows_jobs4_identical_to_serial(self):
        from repro.analysis.table2 import table2_rows

        kwargs = dict(
            defect_ids=(1,), families=("CS2-1", "CS4-1"), pvt_grid=ONE_PVT
        )
        serial = table2_rows(jobs=1, **kwargs)
        parallel = table2_rows(jobs=4, **kwargs)
        assert serial == parallel

    def test_montecarlo_shards_invariant_under_jobs(self, tmp_path):
        from repro.analysis.montecarlo import run_montecarlo_campaign

        kwargs = dict(n_samples=6, shards=3, seed=5)
        one, _ = run_montecarlo_campaign(jobs=1, **kwargs)
        two, _ = run_montecarlo_campaign(jobs=2, **kwargs)
        assert one.samples.tolist() == two.samples.tolist()

    def test_montecarlo_seed_changes_population(self):
        from repro.analysis.montecarlo import run_montecarlo_campaign

        a, _ = run_montecarlo_campaign(n_samples=4, shards=2, seed=5)
        b, _ = run_montecarlo_campaign(n_samples=4, shards=2, seed=6)
        assert a.samples.tolist() != b.samples.tolist()


class TestFailFast:
    def test_value_error_not_retried(self):
        tasks = [TaskPoint.make("toy-badcall", x=1)]
        result = run_campaign(SweepSpec.build("bad", tasks), retries=3)
        record = result.record_for(tasks[0])
        assert not record.ok and "ValueError" in record.error
        assert record.attempts == 1  # deterministic bugs burn no retries

    def test_unknown_kind_fails_fast_despite_retries(self):
        spec = SweepSpec.build("nope", [TaskPoint.make("no-such-kind", x=1)])
        result = run_campaign(spec, retries=3)
        assert result.failures[0].attempts == 1
        assert "KeyError" in result.failures[0].error


class TestBackoffPolicy:
    def test_deterministic_per_key_and_attempt(self):
        policy = BackoffPolicy(base_s=0.1)
        assert policy.delay("k", 1) == policy.delay("k", 1)
        assert policy.delay("k", 1) != policy.delay("other", 1)

    def test_exponential_growth_with_cap(self):
        policy = BackoffPolicy(base_s=0.1, factor=2.0, cap_s=0.4)
        raw = [0.1, 0.2, 0.4, 0.4, 0.4]  # pre-jitter schedule
        for attempt, expected in enumerate(raw, start=1):
            delay = policy.delay("k", attempt)
            # Jitter scales by [0.5, 1.0).
            assert expected * 0.5 <= delay < expected

    def test_zero_base_disables_sleeping(self):
        assert BackoffPolicy(base_s=0.0).delay("k", 3) == 0.0


class TestWorkerCrashRecovery:
    def test_poison_point_quarantined_exactly(self):
        tasks = [TaskPoint.make("toy-exit", x=i) for i in range(8)]
        spec = SweepSpec.build("poison", tasks, context={"poison": 3})
        result = Executor(jobs=2, chunksize=2).run(spec)
        for point in tasks:
            record = result.record_for(point)
            if point.param("x") == 3:
                assert record.status == "crashed"
                assert result.value_for(point) is None
            else:
                assert record.ok
                assert record.value == {"y": point.param("x") ** 2}
        assert result.summary.quarantined == 1
        assert result.recorder.counters["campaign.pool.respawns"] >= 1
        assert result.recorder.counters["campaign.task.quarantined"] == 1

    def test_quarantined_crash_is_cached(self, tmp_path):
        tasks = [TaskPoint.make("toy-exit", x=i) for i in range(4)]
        spec = SweepSpec.build("poison", tasks, context={"poison": 1})
        run_campaign(spec, jobs=2, chunksize=1, cache_dir=str(tmp_path))
        again = run_campaign(
            spec, jobs=2, chunksize=1, cache_dir=str(tmp_path)
        )
        # The verdict is remembered: no worker dies on the rerun.
        assert again.summary.cache_hits == 4 and again.summary.executed == 0
        assert again.recorder.counters.get("campaign.pool.respawns", 0) == 0

    def test_serial_chaos_crash_is_suppressed(self):
        # allow_exit=False in the campaign's own process: the poison roll
        # is counted, never executed - a serial run must survive.
        spec = square_spec(6)
        result = Executor(
            jobs=1, chaos_spec=chaos.ChaosSpec(crash=1.0), observe=True
        ).run(spec)
        assert result.summary.failures == 0
        assert result.recorder.counters["chaos.suppressed.crash"] == 6


class TestDeadlines:
    def test_rejects_nonpositive_deadline(self):
        with pytest.raises(ValueError):
            Executor(deadline_s=0.0)

    def test_hung_task_times_out_within_deadline(self):
        # chaos hang honours watchdog.check, so the worker-side deadline
        # converts a 30s hang into a timeout record in ~deadline_s.
        tasks = [TaskPoint.make("toy-square", x=i) for i in range(3)]
        spec = SweepSpec.build("hang", tasks)
        started = time.monotonic()
        result = Executor(
            jobs=1, deadline_s=0.2,
            chaos_spec=chaos.ChaosSpec(hang=1.0, hang_s=30.0),
        ).run(spec)
        elapsed = time.monotonic() - started
        assert all(r.status == "timeout" for r in result.records.values())
        assert result.summary.timeouts == 3
        assert elapsed < 5.0  # 3 hangs x 0.2s budget, generous slack
        record = next(iter(result.records.values()))
        assert "DeadlineExceeded" in record.error

    def test_parent_budget_kills_unwatchable_hang(self):
        # time.sleep never polls the watchdog; only the parent-side chunk
        # budget (kill + bisect + quarantine) can recover the sweep.
        tasks = [TaskPoint.make("toy-sleep", x=i) for i in range(6)]
        spec = SweepSpec.build("sleeper", tasks, context={"sleepy": 4})
        started = time.monotonic()
        result = Executor(jobs=2, chunksize=2, deadline_s=0.4).run(spec)
        elapsed = time.monotonic() - started
        for point in tasks:
            record = result.record_for(point)
            if point.param("x") == 4:
                assert record.status == "timeout"
            else:
                assert record.ok and record.value == {"y": point.param("x")}
        assert elapsed < 30.0  # nowhere near the 60s sleep


class TestGracefulInterrupt:
    def test_sigint_drains_checkpoints_and_resumes(self, tmp_path):
        tasks = [TaskPoint.make("toy-sigint", x=i) for i in range(10)]
        spec = SweepSpec.build("sigint", tasks, context={"fire_at": 4})
        cache_dir = str(tmp_path)
        first = run_campaign(spec, cache_dir=cache_dir)
        # The run returns normally (no KeyboardInterrupt), flagged, with
        # everything up to and including the firing task checkpointed.
        assert first.interrupted
        assert first.summary.interrupted
        assert "[interrupted]" in first.summary.render()
        assert len(first.records) == 5  # x = 0..4
        resumed = run_campaign(spec, cache_dir=cache_dir)
        assert not resumed.interrupted
        assert resumed.summary.cache_hits == 5
        assert resumed.summary.executed == 5  # no recompute of the prefix
        assert [resumed.value_for(p)["y"] for p in tasks] == list(range(10))

    def test_request_interrupt_stops_between_chunks(self):
        executor = Executor(jobs=1)
        fired = []

        @task("toy-stopper")
        def _toy_stopper(params, context):
            fired.append(params["x"])
            executor.request_interrupt()
            return {"y": params["x"]}

        tasks = [TaskPoint.make("toy-stopper", x=i) for i in range(5)]
        result = executor.run(SweepSpec.build("stopper", tasks))
        assert result.interrupted
        assert fired == [0]  # the flag stopped the very next chunk


class TestChaosSurvivorsBitIdentical:
    def test_jobs2_chaos_equals_serial_fault_free(self, tmp_path):
        """The acceptance run: recoverable points survive chaos unscathed.

        Under crash/hang/transient injection, every non-poison point must
        complete with a value bit-identical to the fault-free serial run,
        and only the deterministically-poisoned points may be quarantined.
        """
        tasks = [TaskPoint.make("toy-square", x=i) for i in range(24)]
        spec = SweepSpec.build("acceptance", tasks)
        baseline = Executor(jobs=1).run(spec)
        spec_chaos = chaos.ChaosSpec(
            crash=0.1, hang=0.05, transient=0.1, hang_s=30.0
        )
        result = Executor(
            jobs=2, chunksize=2, deadline_s=1.0, chaos_spec=spec_chaos,
            retries=2, backoff=BackoffPolicy(base_s=0.0),
        ).run(spec)
        predictor = chaos.ChaosInjector(spec_chaos, spec.chaos_seed())
        for point in tasks:
            record = result.record_for(point)
            if predictor.will_crash(point.key):
                assert record.status == "crashed", point.label()
            elif predictor.will_hang(point.key):
                assert record.status == "timeout", point.label()
            else:
                # Transients are retried to success; values bit-identical.
                assert record.ok, (point.label(), record.error)
                assert record.value == baseline.record_for(point).value


class TestCacheResilience:
    def test_corrupt_lines_counted_not_fatal(self, tmp_path):
        spec = square_spec(4)
        run_campaign(spec, cache_dir=str(tmp_path))
        store = tmp_path / RESULTS_FILENAME
        with store.open("a", encoding="utf-8") as fh:
            fh.write("garbage not json\n")
            fh.write('{"no_key_field": 1}\n')
        cache = ResultCache(tmp_path)
        assert len(cache) == 4
        assert cache.corrupt_lines == 2
        again = run_campaign(spec, cache_dir=str(tmp_path))
        assert again.summary.cache_hits == 4
        assert again.recorder.counters["cache.lines.corrupt"] == 2

    def test_chaos_corruption_detected_on_reload(self, tmp_path):
        spec = square_spec(8)
        result = run_campaign(
            spec, cache_dir=str(tmp_path),
            chaos=chaos.ChaosSpec(corrupt=0.5),
        )
        assert result.summary.failures == 0  # in-memory copy untouched
        cache = ResultCache(tmp_path)
        cache.load()
        predictor = chaos.ChaosInjector(
            chaos.ChaosSpec(corrupt=0.5), spec.chaos_seed()
        )
        expected = sum(predictor.will_corrupt(p.key) for p in spec.tasks)
        assert expected > 0  # the seed must actually corrupt something
        assert cache.corrupt_lines == expected

    def test_compact_drops_stale_and_corrupt_lines(self, tmp_path):
        old = run_campaign(square_spec(4, offset=1), cache_dir=str(tmp_path))
        live_spec = square_spec(6)
        run_campaign(live_spec, cache_dir=str(tmp_path))
        store = tmp_path / RESULTS_FILENAME
        with store.open("a", encoding="utf-8") as fh:
            fh.write("torn line#\n")
        cache = ResultCache(tmp_path)
        dropped = cache.compact(keep_fingerprint=live_spec.fingerprint())
        assert dropped == 5  # 4 stale-fingerprint lines + 1 corrupt line
        assert len(cache) == 6
        lines = store.read_text(encoding="utf-8").splitlines()
        assert len(lines) == 6
        again = run_campaign(live_spec, cache_dir=str(tmp_path))
        assert again.summary.cache_hits == 6

    def test_compact_without_fingerprint_keeps_all_live(self, tmp_path):
        run_campaign(square_spec(3), cache_dir=str(tmp_path))
        run_campaign(square_spec(3, offset=1), cache_dir=str(tmp_path))
        cache = ResultCache(tmp_path)
        dropped = cache.compact()
        # Different offsets change params? No - same points, different
        # fingerprints: the second run's records superseded the first's.
        assert dropped == 3
        assert len(cache) == 3
