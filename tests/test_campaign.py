"""The sweep-campaign engine: specs, cache, executor, resume, parallel runs."""

import json
import os

import pytest

from repro.campaign import (
    Executor,
    ResultCache,
    SweepSpec,
    TaskPoint,
    TaskRecord,
    run_campaign,
    task,
)
from repro.campaign.cache import RESULTS_FILENAME
from repro.devices.pvt import PVT
from repro.spice import ConvergenceError

ONE_PVT = (PVT("fs", 1.0, 125.0),)


# --- toy task kinds (registered once at import; cheap and deterministic) ---

@task("toy-square")
def _toy_square(params, context):
    return {"y": params["x"] ** 2 + context.get("offset", 0)}


@task("toy-converge")
def _toy_converge(params, context):
    if params["x"] == 2:
        raise ConvergenceError("operating point on the crowbar transition")
    return {"y": params["x"]}


@task("toy-flaky")
def _toy_flaky(params, context):
    marker = os.path.join(params["scratch"], f"attempted-{params['x']}")
    if not os.path.exists(marker):
        open(marker, "w").close()
        raise RuntimeError("transient worker hiccup")
    return {"y": params["x"]}


@task("toy-interruptible")
def _toy_interruptible(params, context):
    if params["x"] >= 3 and os.path.exists(params["flag"]):
        raise KeyboardInterrupt
    return {"y": params["x"]}


def square_spec(n=6, offset=0, seed=None):
    tasks = [TaskPoint.make("toy-square", x=i) for i in range(n)]
    context = {"offset": offset} if offset else {}
    return SweepSpec.build("toy", tasks, context=context, seed=seed)


class TestTaskPoint:
    def test_key_independent_of_param_order(self):
        a = TaskPoint.make("k", alpha=1, beta=2.5)
        b = TaskPoint.make("k", beta=2.5, alpha=1)
        assert a == b and a.key == b.key

    def test_key_separates_kind_and_params(self):
        base = TaskPoint.make("k", x=1)
        assert base.key != TaskPoint.make("k2", x=1).key
        assert base.key != TaskPoint.make("k", x=2).key

    def test_nested_sequences_freeze_hashable(self):
        p = TaskPoint.make("k", grid=[["fs", 1.0, 125.0], ["sf", 1.1, -30.0]])
        assert hash(p) is not None
        assert p.param("grid") == (("fs", 1.0, 125.0), ("sf", 1.1, -30.0))


class TestFingerprint:
    def test_context_changes_fingerprint(self):
        assert square_spec().fingerprint() != square_spec(offset=1).fingerprint()

    def test_seed_changes_fingerprint(self):
        assert square_spec(seed=1).fingerprint() != square_spec(seed=2).fingerprint()

    def test_stable_across_builds(self):
        assert square_spec().fingerprint() == square_spec().fingerprint()

    def test_solver_backend_changes_fingerprint(self):
        from repro.spice import using_backend

        with using_backend("compiled"):
            compiled_fp = square_spec().fingerprint()
        with using_backend("reference"):
            reference_fp = square_spec().fingerprint()
        assert compiled_fp != reference_fp

    def test_flipping_backend_invalidates_cache(self, tmp_path):
        from repro.spice import using_backend

        with using_backend("compiled"):
            first = run_campaign(square_spec(4), cache_dir=str(tmp_path))
            assert first.summary.executed == 4
        with using_backend("reference"):
            flipped = run_campaign(square_spec(4), cache_dir=str(tmp_path))
            assert flipped.summary.cache_hits == 0
            assert flipped.summary.executed == 4
        # Re-running on the same backend hits the refreshed entries.
        with using_backend("reference"):
            again = run_campaign(square_spec(4), cache_dir=str(tmp_path))
            assert again.summary.cache_hits == 4 and again.summary.executed == 0


class TestCacheHitMiss:
    def test_second_run_all_hits(self, tmp_path):
        spec = square_spec(8)
        first = run_campaign(spec, cache_dir=str(tmp_path))
        assert first.summary.executed == 8 and first.summary.cache_hits == 0
        second = run_campaign(spec, cache_dir=str(tmp_path))
        assert second.summary.executed == 0 and second.summary.cache_hits == 8
        assert second.summary.cache_hit_rate == 1.0
        for point in spec.tasks:
            assert second.value_for(point) == first.value_for(point)

    def test_fingerprint_invalidates_stale_entries(self, tmp_path):
        run_campaign(square_spec(4), cache_dir=str(tmp_path))
        shifted = run_campaign(square_spec(4, offset=10), cache_dir=str(tmp_path))
        assert shifted.summary.cache_hits == 0 and shifted.summary.executed == 4
        assert shifted.value_for(shifted.spec.tasks[0])["y"] == 10

    def test_growing_the_grid_reuses_the_overlap(self, tmp_path):
        run_campaign(square_spec(4), cache_dir=str(tmp_path))
        grown = run_campaign(square_spec(10), cache_dir=str(tmp_path))
        assert grown.summary.cache_hits == 4 and grown.summary.executed == 6


class TestResume:
    def test_interrupt_checkpoints_then_resumes(self, tmp_path):
        flag = tmp_path / "interrupt-now"
        flag.touch()
        tasks = [
            TaskPoint.make("toy-interruptible", x=i, flag=str(flag))
            for i in range(6)
        ]
        spec = SweepSpec.build("interruptible", tasks)
        cache_dir = str(tmp_path / "cache")
        executor = Executor(jobs=1, chunksize=1)
        with pytest.raises(KeyboardInterrupt):
            executor.run(spec, ResultCache(cache_dir))
        flag.unlink()
        resumed = run_campaign(spec, cache_dir=cache_dir)
        assert resumed.summary.cache_hits == 3  # x = 0, 1, 2 checkpointed
        assert resumed.summary.executed == 3
        assert [resumed.value_for(p)["y"] for p in tasks] == list(range(6))

    def test_truncated_checkpoint_tail_tolerated(self, tmp_path):
        spec = square_spec(5)
        run_campaign(spec, cache_dir=str(tmp_path))
        store = tmp_path / RESULTS_FILENAME
        with store.open("a", encoding="utf-8") as fh:
            fh.write('{"key": "deadbeef", "fingerp')  # killed mid-write
        again = run_campaign(spec, cache_dir=str(tmp_path))
        assert again.summary.cache_hits == 5


class TestFailurePolicy:
    def test_convergence_error_recorded_not_fatal(self, tmp_path):
        tasks = [TaskPoint.make("toy-converge", x=i) for i in range(4)]
        spec = SweepSpec.build("converge", tasks)
        result = run_campaign(spec, cache_dir=str(tmp_path))
        assert result.summary.failures == 1
        assert result.summary.completed == 4  # the sweep finished
        failed = result.record_for(tasks[2])
        assert not failed.ok and "ConvergenceError" in failed.error
        assert result.value_for(tasks[2]) is None
        assert result.value_for(tasks[3]) == {"y": 3}

    def test_recorded_failure_is_a_cache_hit_by_default(self, tmp_path):
        tasks = [TaskPoint.make("toy-converge", x=2)]
        spec = SweepSpec.build("converge", tasks)
        run_campaign(spec, cache_dir=str(tmp_path))
        again = run_campaign(spec, cache_dir=str(tmp_path))
        assert again.summary.cache_hits == 1 and again.summary.failures == 1
        rerun = run_campaign(
            spec, cache_dir=str(tmp_path), rerun_failures=True
        )
        assert rerun.summary.executed == 1

    def test_transient_errors_retried(self, tmp_path):
        tasks = [
            TaskPoint.make("toy-flaky", x=i, scratch=str(tmp_path))
            for i in range(3)
        ]
        spec = SweepSpec.build("flaky", tasks)
        result = run_campaign(spec, retries=1)
        assert result.summary.failures == 0
        assert all(result.record_for(p).attempts == 2 for p in tasks)

    def test_exhausted_retries_recorded(self, tmp_path):
        tasks = [TaskPoint.make("toy-flaky", x=0, scratch=str(tmp_path))]
        result = run_campaign(SweepSpec.build("flaky", tasks), retries=0)
        assert result.summary.failures == 1
        assert "RuntimeError" in result.record_for(tasks[0]).error


class TestCacheStore:
    def test_records_round_trip_as_json_lines(self, tmp_path):
        cache = ResultCache(tmp_path)
        record = TaskRecord(
            key="k1", kind="toy-square", params={"x": 1},
            fingerprint="fp", value={"y": 1}, elapsed=0.25,
        )
        cache.append([record])
        lines = (tmp_path / RESULTS_FILENAME).read_text().splitlines()
        assert json.loads(lines[0])["value"] == {"y": 1}
        fresh = ResultCache(tmp_path)
        assert fresh.lookup("k1", "fp") == record
        assert fresh.lookup("k1", "other-fp") is None


class TestExecutorValidation:
    def test_rejects_nonpositive_jobs(self):
        with pytest.raises(ValueError):
            Executor(jobs=0)

    def test_unknown_kind_is_a_recorded_failure(self):
        spec = SweepSpec.build("nope", [TaskPoint.make("no-such-kind", x=1)])
        result = run_campaign(spec, retries=0)
        assert result.summary.failures == 1
        assert "KeyError" in result.failures[0].error


@pytest.mark.slow
class TestParallelEqualsSerial:
    def test_table2_rows_jobs4_identical_to_serial(self):
        from repro.analysis.table2 import table2_rows

        kwargs = dict(
            defect_ids=(1,), families=("CS2-1", "CS4-1"), pvt_grid=ONE_PVT
        )
        serial = table2_rows(jobs=1, **kwargs)
        parallel = table2_rows(jobs=4, **kwargs)
        assert serial == parallel

    def test_montecarlo_shards_invariant_under_jobs(self, tmp_path):
        from repro.analysis.montecarlo import run_montecarlo_campaign

        kwargs = dict(n_samples=6, shards=3, seed=5)
        one, _ = run_montecarlo_campaign(jobs=1, **kwargs)
        two, _ = run_montecarlo_campaign(jobs=2, **kwargs)
        assert one.samples.tolist() == two.samples.tolist()

    def test_montecarlo_seed_changes_population(self):
        from repro.analysis.montecarlo import run_montecarlo_campaign

        a, _ = run_montecarlo_campaign(n_samples=4, shards=2, seed=5)
        b, _ = run_montecarlo_campaign(n_samples=4, shards=2, seed=6)
        assert a.samples.tolist() != b.samples.tolist()
