"""Shared fixtures.

Electrical results that several test modules need (DRVs, operating points)
are computed once per session here - a DRV bisection costs a quarter of a
second, so caching matters for suite runtime.
"""

from __future__ import annotations

import pytest

from repro.cell import drv_ds1
from repro.devices import CellVariation
from repro.devices.pvt import PVT
from repro.regulator import VrefSelect, solve_regulator
from repro.sram import SRAMConfig


@pytest.fixture(scope="session")
def nominal_pvt() -> PVT:
    return PVT("typical", 1.1, 25.0)


@pytest.fixture(scope="session")
def hot_pvt() -> PVT:
    """The corner hosting most of Table II's arg-min conditions."""
    return PVT("fs", 1.0, 125.0)


@pytest.fixture(scope="session")
def small_config() -> SRAMConfig:
    """Small geometry for March runs (semantics are size-independent)."""
    return SRAMConfig(n_words=32, word_bits=8)


@pytest.fixture(scope="session")
def drv_symmetric() -> float:
    return drv_ds1(CellVariation.symmetric())


@pytest.fixture(scope="session")
def drv_cs2() -> float:
    """Degraded-state DRV of the CS2 variation at nominal conditions."""
    return drv_ds1(CellVariation(mpcc1=-3, mncc1=-3))


@pytest.fixture(scope="session")
def drv_worst_hot() -> float:
    """6-sigma worst-case DRV at the recommended test corner."""
    return drv_ds1(CellVariation.worst_case_drv1(6.0), "fs", 125.0)


@pytest.fixture(scope="session")
def clean_op_nominal(nominal_pvt):
    """Fault-free regulator operating point at nominal PVT / VREF70."""
    op, _ = solve_regulator(nominal_pvt, VrefSelect.VREF70)
    return op
