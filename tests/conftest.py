"""Shared fixtures and suite-wide determinism discipline.

Electrical results that several test modules need (DRVs, operating points)
are computed once per session here - a DRV bisection costs a quarter of a
second, so caching matters for suite runtime.

Two suite-wide rules enforce reproducibility:

* hypothesis runs under a ``derandomize=True`` profile, so property tests
  explore the same example sequence on every run (a failure seen in CI is
  a failure seen locally, always);
* an autouse fixture seeds the *global* ``random`` / ``numpy.random``
  state per test from the test's nodeid, then fails the test if it
  consumed that global state.  Library code must thread explicit
  ``numpy.random.default_rng(seed)`` generators; a test that genuinely
  needs global RNG opts out with ``@pytest.mark.uses_global_rng``.
"""

from __future__ import annotations

import random
import zlib

import numpy as np
import pytest
from hypothesis import settings as hypothesis_settings

from repro.cell import drv_ds1
from repro.devices import CellVariation
from repro.devices.pvt import PVT
from repro.regulator import VrefSelect, solve_regulator
from repro.sram import SRAMConfig

hypothesis_settings.register_profile("repro", derandomize=True)
hypothesis_settings.load_profile("repro")


def _np_state_fingerprint():
    name, keys, pos, has_gauss, cached = np.random.get_state()
    return (name, keys.tobytes(), int(pos), int(has_gauss), float(cached))


@pytest.fixture(autouse=True)
def _seeded_global_rng(request):
    """Seed global RNGs per test; fail tests that silently consume them.

    The seed is derived from the test's nodeid so every test sees a
    distinct but reproducible stream even when one sneaks a draw in.
    """
    seed = zlib.crc32(request.node.nodeid.encode("utf-8"))
    random.seed(seed)
    np.random.seed(seed)
    py_state = random.getstate()
    np_state = _np_state_fingerprint()
    yield
    if request.node.get_closest_marker("uses_global_rng"):
        return
    function = getattr(request, "function", None)
    if function is not None and getattr(function, "is_hypothesis_test", False):
        # hypothesis manages (and legitimately advances) global RNG state.
        return
    consumed = []
    if random.getstate() != py_state:
        consumed.append("random")
    if _np_state_fingerprint() != np_state:
        consumed.append("numpy.random")
    if consumed:
        pytest.fail(
            f"test consumed unseeded global RNG state ({', '.join(consumed)}); "
            "thread an explicit numpy.random.default_rng(seed) / "
            "random.Random(seed) instead, or mark the test with "
            "@pytest.mark.uses_global_rng",
            pytrace=False,
        )


@pytest.fixture(scope="session")
def nominal_pvt() -> PVT:
    return PVT("typical", 1.1, 25.0)


@pytest.fixture(scope="session")
def hot_pvt() -> PVT:
    """The corner hosting most of Table II's arg-min conditions."""
    return PVT("fs", 1.0, 125.0)


@pytest.fixture(scope="session")
def small_config() -> SRAMConfig:
    """Small geometry for March runs (semantics are size-independent)."""
    return SRAMConfig(n_words=32, word_bits=8)


@pytest.fixture(scope="session")
def drv_symmetric() -> float:
    return drv_ds1(CellVariation.symmetric())


@pytest.fixture(scope="session")
def drv_cs2() -> float:
    """Degraded-state DRV of the CS2 variation at nominal conditions."""
    return drv_ds1(CellVariation(mpcc1=-3, mncc1=-3))


@pytest.fixture(scope="session")
def drv_worst_hot() -> float:
    """6-sigma worst-case DRV at the recommended test corner."""
    return drv_ds1(CellVariation.worst_case_drv1(6.0), "fs", 125.0)


@pytest.fixture(scope="session")
def clean_op_nominal(nominal_pvt):
    """Fault-free regulator operating point at nominal PVT / VREF70."""
    op, _ = solve_regulator(nominal_pvt, VrefSelect.VREF70)
    return op
