"""Command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_defects_parsing_error(self):
        with pytest.raises(SystemExit):
            main(["table3", "--defects", "1,x"])


class TestCommands:
    def test_table1_fast(self, capsys):
        assert main(["table1", "--fast"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out and "CS1-1" in out

    def test_fig4_fast(self, capsys):
        assert main(["fig4", "--fast"]) == 0
        out = capsys.readouterr().out
        assert "DRV_DS1" in out and "DRV_DS0" in out

    def test_power_fast(self, capsys):
        assert main(["power", "--fast"]) == 0
        assert ">30%" in capsys.readouterr().out

    def test_classify_subset(self, capsys):
        assert main(["classify", "--defects", "6,14"]) == 0
        out = capsys.readouterr().out
        assert "Df6" in out and "Df14" in out and "MISMATCH" not in out

    def test_table2_slice(self, capsys):
        assert main(["table2", "--fast", "--defects", "16"]) == 0
        assert "Df16" in capsys.readouterr().out


class TestCampaignCommands:
    def test_mc_sharded(self, capsys):
        assert main(["mc", "--samples", "4", "--shards", "2", "--seed", "9"]) == 0
        captured = capsys.readouterr()
        assert "Monte Carlo DRV_DS" in captured.out
        assert "campaign[montecarlo] 2 tasks" in captured.err

    def test_campaign_umbrella_reports_cache_hits(self, capsys, tmp_path):
        argv = [
            "campaign", "mc", "--samples", "4", "--shards", "2",
            "--cache-dir", str(tmp_path),
        ]
        assert main(argv) == 0
        capsys.readouterr()
        assert main(argv) == 0
        captured = capsys.readouterr()
        assert "2 cache hits (100%)" in captured.err
        assert "Monte Carlo DRV_DS" in captured.out

    @pytest.mark.slow
    def test_table2_jobs_and_cache(self, capsys, tmp_path):
        argv = [
            "table2", "--fast", "--defects", "16",
            "--jobs", "2", "--cache-dir", str(tmp_path),
        ]
        assert main(argv) == 0
        first = capsys.readouterr()
        assert "Df16" in first.out
        assert main(argv) == 0
        second = capsys.readouterr()
        assert second.out == first.out  # cached rerun renders the same table
        assert "5 cache hits (100%)" in second.err


class TestStatsCommand:
    def test_campaign_run_then_stats(self, capsys, tmp_path):
        argv = [
            "mc", "--samples", "4", "--shards", "2",
            "--cache-dir", str(tmp_path),
        ]
        assert main(argv) == 0
        assert (tmp_path / "report.json").exists()
        assert (tmp_path / "trace.jsonl").exists()
        capsys.readouterr()
        assert main(["stats", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "campaign[montecarlo]" in out
        assert "slowest" in out and "mc-shard" in out

    def test_stats_accepts_report_file_and_top(self, capsys, tmp_path):
        main([
            "mc", "--samples", "4", "--shards", "4",
            "--cache-dir", str(tmp_path),
        ])
        capsys.readouterr()
        report_file = str(tmp_path / "report.json")
        assert main(["stats", report_file, "--top", "1"]) == 0
        out = capsys.readouterr().out
        assert out.count("mc-shard") >= 1

    def test_stats_missing_report_exits_with_hint(self, tmp_path):
        with pytest.raises(SystemExit, match="report.json"):
            main(["stats", str(tmp_path / "nowhere")])

    def test_stats_rejects_foreign_schema(self, tmp_path):
        bogus = tmp_path / "report.json"
        bogus.write_text('{"schema": "something/else"}')
        with pytest.raises(SystemExit, match="schema"):
            main(["stats", str(bogus)])

    def test_no_obs_suppresses_report(self, capsys, tmp_path):
        argv = [
            "mc", "--samples", "4", "--shards", "2", "--no-obs",
            "--cache-dir", str(tmp_path),
        ]
        assert main(argv) == 0
        assert not (tmp_path / "report.json").exists()
        assert not (tmp_path / "trace.jsonl").exists()

    def test_obs_dir_redirects_artifacts(self, capsys, tmp_path):
        obs_dir = tmp_path / "obs"
        argv = [
            "mc", "--samples", "4", "--shards", "2",
            "--cache-dir", str(tmp_path / "cache"),
            "--obs-dir", str(obs_dir),
        ]
        assert main(argv) == 0
        assert (obs_dir / "report.json").exists()
        assert not (tmp_path / "cache" / "report.json").exists()


class TestStatsJson:
    def test_stats_json_emits_the_raw_report(self, capsys, tmp_path):
        import json

        main([
            "mc", "--samples", "4", "--shards", "2",
            "--cache-dir", str(tmp_path),
        ])
        capsys.readouterr()
        assert main(["stats", str(tmp_path), "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["schema"].startswith("repro.obs.report/")
        assert report["campaign"]["name"] == "montecarlo"
        assert report["campaign"]["total"] == 2


class TestTraceCommand:
    def _mc(self, tmp_path):
        return main([
            "mc", "--samples", "4", "--shards", "2",
            "--cache-dir", str(tmp_path),
        ])

    def test_trace_renders_stitched_tree_from_dir(self, capsys, tmp_path):
        assert self._mc(tmp_path) == 0
        capsys.readouterr()
        assert main(["trace", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert out.startswith("trace ")
        assert "run montecarlo" in out
        assert "task.mc-shard" in out
        assert "*" in out  # the critical path is marked

    def test_trace_accepts_file_and_slow_filter(self, capsys, tmp_path):
        assert self._mc(tmp_path) == 0
        capsys.readouterr()
        trace_file = str(tmp_path / "trace.jsonl")
        assert main(["trace", trace_file, "--slow", "9999"]) == 0
        out = capsys.readouterr().out
        assert "run montecarlo" in out
        assert "hidden)" in out  # everything is faster than 9999s

    def test_trace_unknown_job_id_errors(self, capsys, tmp_path):
        assert self._mc(tmp_path) == 0
        capsys.readouterr()
        with pytest.raises(SystemExit, match="no stitched trace"):
            main(["trace", "j9999-nope", "--dir", str(tmp_path)])

    def test_trace_empty_dir_errors(self, tmp_path):
        with pytest.raises(SystemExit, match="no trace.jsonl"):
            main(["trace", str(tmp_path)])


class TestTopCommand:
    def test_top_renders_one_frame_and_exits(self, capsys, monkeypatch):
        from repro.serve.client import ServeClient

        fake = {
            "uptime_s": 5.0, "draining": False,
            "workers": {"jobs": 2, "mode": "pool", "pump_alive": True},
            "jobs": {"done": 3}, "queued_points": 0,
            "queued_by_tenant": {}, "tenants": [],
            "counters": {"serve.points.total": 6,
                         "serve.points.executed": 6},
        }
        monkeypatch.setattr(ServeClient, "stats", lambda self: fake)
        assert main(["top", "--count", "1"]) == 0
        out = capsys.readouterr().out
        assert "repro top | uptime 5s | workers 2 (pool, pump alive)" in out
        assert "jobs: 3 done" in out
        assert "tenants: none yet" in out

    def test_top_unreachable_daemon_exits_with_hint(self):
        with pytest.raises(SystemExit, match="cannot reach"):
            main(["top", "--url", "http://127.0.0.1:9", "--count", "1"])


class TestRunMarch:
    def test_library_test_passes_clean_memory(self, capsys):
        assert main(["run-march", "MATS+", "--words", "8", "--bits", "2"]) == 0
        assert "PASS" in capsys.readouterr().out

    def test_custom_notation(self, capsys):
        code = main(["run-march", "{ u(w1); u(r1) }", "--words", "4", "--bits", "2"])
        assert code == 0

    def test_degraded_sleep_supply_fails(self, capsys):
        """A near-zero VDD_CC during DSM collapses the whole array."""
        code = main([
            "run-march", "March m-LZ", "--words", "8", "--bits", "2",
            "--vddcc", "0.01",
        ])
        assert code == 1
        assert "FAIL" in capsys.readouterr().out


class TestResilienceFlags:
    def test_strict_exits_nonzero_on_failures(self, capsys):
        # transient:1.0 makes every attempt fail, so all 15 grid points
        # are recorded failures and --strict refuses to exit 0.
        argv = [
            "table2", "--fast", "--defects", "16",
            "--chaos", "transient:1.0", "--strict",
        ]
        from repro.cli import EXIT_STRICT

        assert main(argv) == EXIT_STRICT
        captured = capsys.readouterr()
        assert "strict:" in captured.err
        assert "15 failed" in captured.err

    def test_strict_passes_clean_run(self, capsys):
        argv = ["mc", "--samples", "4", "--shards", "2", "--strict"]
        assert main(argv) == 0

    def test_chaos_spec_rejected_with_hint(self):
        with pytest.raises(SystemExit, match="explode"):
            main(["mc", "--samples", "4", "--chaos", "explode:0.5"])

    def test_nonpositive_deadline_rejected(self):
        with pytest.raises(SystemExit, match="deadline"):
            main(["mc", "--samples", "4", "--deadline", "0"])

    def test_deadline_flag_accepted_on_clean_run(self, capsys):
        argv = ["mc", "--samples", "4", "--shards", "2", "--deadline", "300"]
        assert main(argv) == 0

    def test_compact_cache_flag(self, capsys, tmp_path):
        base = [
            "mc", "--samples", "4", "--shards", "2",
            "--cache-dir", str(tmp_path),
        ]
        assert main(base) == 0
        results = tmp_path / "results.jsonl"
        with results.open("a", encoding="utf-8") as fh:
            fh.write("corrupt tail#\n")
        capsys.readouterr()
        assert main(base + ["--compact-cache"]) == 0
        captured = capsys.readouterr()
        assert "2 cache hits (100%)" in captured.err
        assert "cache compacted" in captured.err
        # The corrupt line is gone; only the two live records remain.
        assert len(results.read_text().splitlines()) == 2

    def test_compact_cache_requires_a_cache(self):
        with pytest.raises(SystemExit, match="compact-cache"):
            main(["mc", "--samples", "4", "--compact-cache"])

    def test_corrupt_cache_lines_surface_in_stats(self, capsys, tmp_path):
        argv = [
            "mc", "--samples", "4", "--shards", "2",
            "--cache-dir", str(tmp_path),
        ]
        assert main(argv) == 0
        with (tmp_path / "results.jsonl").open("a", encoding="utf-8") as fh:
            fh.write("scribbled by chaos#\n")
        assert main(argv) == 0
        capsys.readouterr()
        assert main(["stats", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "cache.lines.corrupt" in out


class TestMacroCommand:
    ARGV = [
        "macro", "--words", "64", "--bits", "8", "--banks", "2",
        "--seed", "3", "--buckets", "6", "--temp", "-40",
    ]

    def test_macro_renders_escape_map(self, capsys, tmp_path):
        assert main(self.ARGV + ["--cache-dir", str(tmp_path)]) == 0
        captured = capsys.readouterr()
        assert "March m-LZ escape map: 64x8 macro, 2 banks, seed 3" in captured.out
        assert "campaign[macro] 2 tasks" in captured.err

    def test_cached_rerun_renders_identically(self, capsys, tmp_path):
        argv = self.ARGV + ["--cache-dir", str(tmp_path)]
        assert main(argv) == 0
        first = capsys.readouterr()
        assert main(argv) == 0
        second = capsys.readouterr()
        assert second.out == first.out
        assert "2 cache hits (100%)" in second.err

    def test_stats_renders_per_bank_escape_map(self, capsys, tmp_path):
        assert main(self.ARGV + ["--cache-dir", str(tmp_path)]) == 0
        capsys.readouterr()
        assert main(["stats", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "Macro escape map by bank (March m-LZ)" in out
        # The per-bank counters are folded into the table, not the raw list.
        assert "macro.bank.0.cells" not in out

    def test_cli_defaults_track_analysis_constants(self):
        """The parser uses literals (it must stay import-free); this pins
        them to the canonical MACRO_* values in analysis.macro."""
        from repro.analysis.macro import (
            MACRO_BUCKETS,
            MACRO_CORNER,
            MACRO_DS_TIME,
            MACRO_MISSION_TIME,
            MACRO_TEMP_C,
            MACRO_VDDCC,
        )

        args = build_parser().parse_args(["macro"])
        assert args.vddcc == MACRO_VDDCC
        assert args.ds_time == MACRO_DS_TIME
        assert args.mission_time == MACRO_MISSION_TIME
        assert args.corner == MACRO_CORNER
        assert args.temp == MACRO_TEMP_C
        # Slow-path geometry defaults resolved in cmd_macro.
        assert args.words is None and args.banks is None
        assert args.buckets is None or args.buckets == MACRO_BUCKETS
        assert args.bits == 64 and args.seed == 1
