"""Regulator netlist construction and fault-free operating points."""

import pytest

from repro.devices.pvt import PVT
from repro.regulator import DEFECTS, VrefSelect, build_regulator, solve_regulator


class TestFaultFreeOperation:
    def test_nominal_regulation(self, clean_op_nominal):
        """Vreg tracks Vref = 0.70 * 1.1 V within a small amp offset."""
        op = clean_op_nominal
        assert op.vddcc == pytest.approx(0.77, abs=0.01)
        assert op.vref == pytest.approx(0.77, abs=1e-3)
        assert op.vbias == pytest.approx(0.52 * 1.1, abs=1e-3)

    def test_all_four_taps(self, nominal_pvt):
        for sel in VrefSelect:
            op, _ = solve_regulator(nominal_pvt, sel)
            assert op.vddcc == pytest.approx(sel.fraction * 1.1, abs=0.012)

    def test_sub_microwatt_class_overhead(self, nominal_pvt, clean_op_nominal):
        """Regulator + array current stays in the low-microamp range."""
        assert clean_op_nominal.supply_current < 10e-6

    def test_regulation_holds_at_test_corner(self, hot_pvt, drv_worst_hot):
        """Fault-free Vreg must stay above the worst-case DRV (margin)."""
        op, _ = solve_regulator(hot_pvt, VrefSelect.VREF74)
        assert op.vddcc > drv_worst_hot

    def test_regulator_off_discharges_output(self, nominal_pvt):
        op, _ = solve_regulator(nominal_pvt, VrefSelect.VREF74, regon=False)
        # MPreg2 pulls MPreg1's gate to VDD; the bleed discharges Vreg.
        assert op.vddcc < 0.2
        assert op.vref == pytest.approx(1.1, abs=0.01)  # selector forces VDD
        assert op.vbias == pytest.approx(0.0, abs=0.01)


class TestDefectInjection:
    def test_requires_positive_resistance(self, nominal_pvt):
        with pytest.raises(ValueError, match="positive resistance"):
            build_regulator(nominal_pvt, VrefSelect.VREF70, DEFECTS[1], 0.0)

    def test_defect_splits_branch(self, nominal_pvt):
        circuit, nodes = build_regulator(
            nominal_pvt, VrefSelect.VREF70, DEFECTS[19], 1e3
        )
        assert circuit.has_node("vreg")
        assert nodes["vreg"] == "vreg"
        clean_circuit, clean_nodes = build_regulator(nominal_pvt, VrefSelect.VREF70)
        assert clean_nodes["vreg"] == "vout_stage"  # no split without defect

    def test_drf_defect_lowers_vddcc(self, nominal_pvt, clean_op_nominal):
        op, _ = solve_regulator(nominal_pvt, VrefSelect.VREF70, DEFECTS[1], 300e3)
        assert op.vddcc < clean_op_nominal.vddcc - 0.02

    def test_power_defect_raises_vddcc(self, nominal_pvt, clean_op_nominal):
        op, _ = solve_regulator(nominal_pvt, VrefSelect.VREF70, DEFECTS[6], 1e6)
        assert op.vddcc > clean_op_nominal.vddcc + 0.02

    def test_gate_stub_defect_is_harmless(self, nominal_pvt, clean_op_nominal):
        """Df14 (MNreg2 gate stub) carries no current: no DC effect."""
        op, _ = solve_regulator(nominal_pvt, VrefSelect.VREF70, DEFECTS[14], 100e6)
        assert op.vddcc == pytest.approx(clean_op_nominal.vddcc, abs=2e-3)

    def test_resistance_stepping_fallback(self, nominal_pvt):
        """Hard mid-range mirror defect converges via R-stepping."""
        op, _ = solve_regulator(nominal_pvt, VrefSelect.VREF74, DEFECTS[15], 3e6)
        assert op.vddcc > 0.9  # Vreg floats high: power category behaviour

    def test_vreg_error_property(self, clean_op_nominal):
        assert clean_op_nominal.vreg_error == pytest.approx(
            clean_op_nominal.vddcc - 0.77, abs=1e-12
        )

    def test_weak_group_loads_regulator(self, hot_pvt):
        from repro.regulator.load import WeakCellGroup

        clean, _ = solve_regulator(hot_pvt, VrefSelect.VREF74, DEFECTS[16], 2e3)
        loaded, _ = solve_regulator(
            hot_pvt, VrefSelect.VREF74, DEFECTS[16], 2e3,
            weak_groups=(WeakCellGroup(count=64, drv=0.73),),
        )
        # Near-flip crowbar current of 64 weak cells degrades Vddcc further.
        assert loaded.vddcc < clean.vddcc
