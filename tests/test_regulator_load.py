"""Leakage table and the array-load MNA element."""

import numpy as np
import pytest

from repro.regulator.load import (
    ArrayLoad,
    LeakageTable,
    WeakCellGroup,
    leakage_table,
)
from repro.spice import Circuit, solve_dc


class TestLeakageTable:
    def test_interpolation_consistency(self):
        """i() and di_dv() must come from the same linear segment."""
        table = leakage_table("typical", 25.0)
        v0 = 0.613
        h = 1e-5
        slope_numeric = (table.i(v0 + h) - table.i(v0 - h)) / (2 * h)
        assert table.di_dv(v0) == pytest.approx(slope_numeric, rel=1e-6)

    def test_clamping(self):
        table = leakage_table("typical", 25.0)
        assert table.i(-1.0) == table.i(0.0)
        assert table.i(5.0) == table.i(1.4)
        assert table.di_dv(-1.0) == 0.0

    def test_monotone(self):
        table = leakage_table("typical", 25.0)
        # The model has a tiny non-monotone dip below ~0.2 V (pass-gate
        # leak reshaping); the regulator never operates there.
        values = [table.i(v) for v in np.linspace(0.25, 1.2, 15)]
        assert values == sorted(values)

    def test_cached(self):
        assert leakage_table("fs", 125.0) is leakage_table("fs", 125.0)

    def test_temperature_ordering(self):
        assert leakage_table("typical", 125.0).i(0.77) > leakage_table("typical", 25.0).i(0.77) * 50


class TestArrayLoad:
    def _solve_with_load(self, n_cells=262144, weak=(), v=0.77):
        c = Circuit()
        c.vsource("v", "n", "0", v)
        c.add(ArrayLoad("load", c.node("n"), leakage_table("typical", 25.0), n_cells, weak))
        s = solve_dc(c)
        return -s.branch_current("v")

    def test_draws_array_leakage(self):
        table = leakage_table("typical", 25.0)
        current = self._solve_with_load()
        assert current == pytest.approx(262144 * table.i(0.77), rel=1e-6)

    def test_weak_cells_add_current_below_drv(self):
        # 64 weak cells at 200x leakage against a 10K-cell array: the
        # crowbar roughly doubles the load once the supply is below DRV.
        base = self._solve_with_load(n_cells=10_000, v=0.60)
        crowbar = self._solve_with_load(
            n_cells=10_000, weak=(WeakCellGroup(count=64, drv=0.70),), v=0.60
        )
        assert crowbar > base * 2.0

    def test_weak_cell_share_matches_paper_scale(self):
        # Against the full 256K array the CS5 population adds a few percent
        # of extra current - the same order as Table II's CS5-vs-CS2 shift.
        base = self._solve_with_load(v=0.60)
        crowbar = self._solve_with_load(
            weak=(WeakCellGroup(count=64, drv=0.70),), v=0.60
        )
        assert 1.02 < crowbar / base < 1.15

    def test_weak_cells_quiet_above_drv(self):
        base = self._solve_with_load(v=0.80)
        quiet = self._solve_with_load(
            weak=(WeakCellGroup(count=64, drv=0.70),), v=0.80
        )
        assert quiet == pytest.approx(base, rel=0.02)

    def test_internal_derivative_consistency(self):
        load = ArrayLoad(
            "l", 1, leakage_table("typical", 25.0), 1000,
            (WeakCellGroup(count=8, drv=0.7),),
        )
        v0 = 0.695  # inside the crowbar turn-on region
        h = 1e-6
        i_p, _ = load._current(v0 + h)
        i_m, _ = load._current(v0 - h)
        _i, slope = load._current(v0)
        assert slope == pytest.approx((i_p - i_m) / (2 * h), rel=1e-4)

    def test_describe(self):
        load = ArrayLoad(
            "l", 1, leakage_table("typical", 25.0), 256,
            (WeakCellGroup(count=1, drv=0.7),),
        )
        text = load.describe(["0", "vddcc"])
        assert "cells=256" in text and "1x@0.700V" in text
