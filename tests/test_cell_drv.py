"""Data retention voltage analysis (Section III)."""

import pytest

from repro.cell import drv_ds, drv_ds0, drv_ds1, worst_case_drv
from repro.cell.drv import DRV_SEARCH_LO
from repro.devices import CellVariation
from repro.devices.pvt import PVT

SYM = CellVariation.symmetric()


class TestSymmetricCell:
    def test_floor_region(self, drv_symmetric):
        """The paper's symmetric cells retain down to ~60 mV."""
        assert 0.04 < drv_symmetric < 0.12

    def test_both_states_equal(self):
        assert drv_ds1(SYM) == pytest.approx(drv_ds0(SYM), abs=2e-3)

    def test_drv_is_max_of_states(self):
        v = CellVariation(mpcc1=-3, mncc1=-3)
        assert drv_ds(v) == pytest.approx(max(drv_ds1(v), drv_ds0(v)))


class TestVariationImpact:
    def test_paper_ladder_ordering(self):
        """CS1 (6s) > CS2 (-3s strong side) > CS3 (+3s weak side) > CS4."""
        cs1 = drv_ds1(CellVariation.worst_case_drv1(6.0))
        cs2 = drv_ds1(CellVariation(mpcc1=-3, mncc1=-3))
        cs3 = drv_ds1(CellVariation(mpcc2=3, mncc2=3))
        cs4 = drv_ds1(CellVariation(mpcc2=0.1, mncc2=0.1))
        sym = drv_ds1(SYM)
        assert cs1 > cs2 > cs3 > cs4 > sym * 0.99

    def test_worst_case_combination_beats_single(self):
        combo = drv_ds1(CellVariation.worst_case_drv1(3.0))
        single = drv_ds1(CellVariation.single("mncc1", -3.0))
        assert combo > single

    def test_favoured_state_hits_search_floor(self):
        """Variation that degrades '1' makes '0' retain to the floor."""
        v = CellVariation.worst_case_drv1(6.0)
        assert drv_ds0(v) <= 0.03

    def test_mirror_symmetry(self):
        v = CellVariation(mpcc1=-3, mncc1=-3)
        assert drv_ds1(v) == pytest.approx(drv_ds0(v.mirrored()), abs=3e-3)

    def test_pass_transistor_matters_less_than_inverter(self):
        """Fig. 4: pass-gate variation is the weakest lever, but not zero."""
        pas = drv_ds1(CellVariation.single("mncc3", -4.0))
        inv = drv_ds1(CellVariation.single("mncc1", -4.0))
        sym = drv_ds1(SYM)
        assert inv > pas
        assert pas > sym  # "cannot be neglected, however"


class TestWorstCaseSearch:
    def test_returns_argmax_pvt(self):
        grid = [PVT("typical", 1.1, 25.0), PVT("fs", 1.1, 125.0)]
        value, pvt = worst_case_drv(
            CellVariation.worst_case_drv1(6.0), "ds1", pvt_grid=grid
        )
        assert pvt.corner == "fs" and pvt.temp_c == 125.0
        assert value > 0.6

    def test_invalid_selector(self):
        with pytest.raises(ValueError):
            worst_case_drv(SYM, "ds2")

    def test_6sigma_worst_case_near_paper_anchor(self, drv_worst_hot):
        """Calibration target: paper reports 730 mV; we land nearby."""
        assert 0.65 < drv_worst_hot < 0.74

    def test_search_floor_constant(self):
        assert DRV_SEARCH_LO == pytest.approx(0.02)
