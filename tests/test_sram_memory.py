"""Behavioral SRAM: operations, power-mode protocol, retention plumbing."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.sram import (
    LowPowerSRAM,
    MemoryModeError,
    PowerMode,
    RetentionEngine,
    SRAMConfig,
    WeakCell,
)

CFG = SRAMConfig(n_words=16, word_bits=8)


class TestReadWrite:
    def test_roundtrip(self):
        m = LowPowerSRAM(CFG)
        m.write(3, 0xA5)
        assert m.read(3) == 0xA5

    @settings(max_examples=40, deadline=None)
    @given(
        addr=st.integers(0, 15),
        value=st.integers(0, 255),
    )
    def test_roundtrip_property(self, addr, value):
        m = LowPowerSRAM(CFG)
        m.write(addr, value)
        assert m.read(addr) == value

    def test_word_masking(self):
        m = LowPowerSRAM(CFG)
        m.write(0, 0x1FF)  # 9 bits into an 8-bit word
        assert m.read(0) == 0xFF

    def test_bounds_checked(self):
        m = LowPowerSRAM(CFG)
        with pytest.raises(IndexError):
            m.write(16, 0)
        with pytest.raises(IndexError):
            m.read(-1)
        with pytest.raises(IndexError):
            m.peek_bit(0, 8)

    def test_fill(self):
        m = LowPowerSRAM(CFG)
        m.fill(0xFF)
        assert all(m.read(a) == 0xFF for a in range(16))

    def test_op_count(self):
        m = LowPowerSRAM(CFG)
        m.write(0, 1)
        m.read(0)
        assert m.op_count == 2

    def test_force_and_peek_bypass_mode(self):
        m = LowPowerSRAM(CFG)
        m.force_bit(2, 5, 1)
        assert m.peek_bit(2, 5) == 1
        assert m.read(2) == 1 << 5


class TestModeProtocol:
    def test_no_ops_outside_act(self):
        m = LowPowerSRAM(CFG)
        m.enter_deep_sleep()
        with pytest.raises(MemoryModeError, match="DS"):
            m.read(0)
        with pytest.raises(MemoryModeError):
            m.write(0, 1)

    def test_ds_requires_act(self):
        m = LowPowerSRAM(CFG)
        m.enter_deep_sleep()
        with pytest.raises(MemoryModeError):
            m.enter_deep_sleep()

    def test_wake_requires_ds(self):
        m = LowPowerSRAM(CFG)
        with pytest.raises(MemoryModeError):
            m.wake_up()

    def test_power_on_requires_po(self):
        m = LowPowerSRAM(CFG)
        with pytest.raises(MemoryModeError):
            m.power_on()

    def test_full_cycle(self):
        m = LowPowerSRAM(CFG)
        m.write(1, 0x42)
        m.enter_deep_sleep()
        assert m.mode is PowerMode.DS
        m.wake_up()
        assert m.mode is PowerMode.ACT
        assert m.read(1) == 0x42  # fault-free sleep retains everything


class TestRetentionIntegration:
    def _weak_memory(self, drv1=0.70, drv0=0.05):
        engine = RetentionEngine([WeakCell(addr=4, bit=2, drv1=drv1, drv0=drv0)])
        return LowPowerSRAM(CFG, retention=engine)

    def test_weak_cell_flips_below_drv(self):
        m = self._weak_memory()
        m.write(4, 1 << 2)
        m.enter_deep_sleep(ds_time=1e-3, vddcc=0.50)
        flipped = m.wake_up()
        assert flipped == [(4, 2)]
        assert m.read(4) == 0

    def test_weak_cell_retains_above_drv(self):
        m = self._weak_memory()
        m.write(4, 1 << 2)
        m.enter_deep_sleep(ds_time=1e-3, vddcc=0.74)
        assert m.wake_up() == []
        assert m.read(4) == 1 << 2

    def test_state_dependence(self):
        """The weak cell only loses the state whose DRV is violated."""
        m = self._weak_memory(drv1=0.70, drv0=0.05)
        m.write(4, 0)  # stores '0': drv0 = 50 mV, safe at 0.5 V
        m.enter_deep_sleep(ds_time=1e-3, vddcc=0.50)
        assert m.wake_up() == []

    def test_short_sleep_retains(self):
        m = self._weak_memory()
        m.write(4, 1 << 2)
        m.enter_deep_sleep(ds_time=1e-12, vddcc=0.68)
        assert m.wake_up() == []

    def test_bulk_loss_randomises_array(self):
        m = LowPowerSRAM(CFG, rng=np.random.default_rng(3))
        m.fill(0xFF)
        m.enter_deep_sleep(ds_time=1e-3, vddcc=0.01)
        flipped = m.wake_up()
        assert flipped == [("*", "*")]
        words = [m.read(a) for a in range(16)]
        assert any(w != 0xFF for w in words)

    def test_power_off_randomises(self):
        m = LowPowerSRAM(CFG)
        m.fill(0xAA)
        m.power_off()
        assert m.mode is PowerMode.PO
        m.power_on()
        words = [m.read(a) for a in range(16)]
        assert any(w != 0xAA for w in words)
