"""The sweep service: submission codec, cross-tenant dedupe, graceful
drain, HTTP front end and the stdlib client.

Everything here runs the service with ``jobs=1`` (the inline pump), so
the toy task kinds registered below stay visible - there is no pickling
boundary - and execution order matches the serial executor exactly,
which is what the bit-identical comparison test relies on.
"""

import asyncio
import base64
import json
import pickle
import threading
import time

import pytest

from repro.campaign import BackoffPolicy, SweepSpec, TaskPoint, run_campaign, task
from repro.campaign.runtime import run_chunk
from repro.obs.export import parse_metrics
from repro.obs.stitch import build_trees
from repro.obs.trace import read_trace
from repro.serve import (
    JobState,
    LeaseGone,
    ServiceDraining,
    SweepService,
    SweepWorker,
    UnknownWorker,
)
from repro.serve.client import ServeClient, ServeError
from repro.serve.models import advance, submission_to_spec, validate_tenant
from repro.serve.server import ServeApp
from repro.serve.state import JobStore

#: Wall-clock budget for "the pump finishes this tiny job" waits.
DEADLINE = 20.0


@task("serve-square")
def _serve_square(params, context):
    return {"y": params["x"] ** 2 + context.get("offset", 0)}


@task("serve-slow")
def _serve_slow(params, context):
    time.sleep(params.get("sleep", 0.15))
    return {"x": params["x"]}


@task("serve-fail")
def _serve_fail(params, context):
    raise ValueError("deterministically broken point")


def spec_of(xs, name="sweep", kind="serve-square"):
    return SweepSpec.build(name, [TaskPoint.make(kind, x=x) for x in xs])


def wait_terminal(service, *jobs, deadline=DEADLINE):
    end = time.monotonic() + deadline
    while time.monotonic() < end:
        if all(service.store.get(j.id).state.terminal for j in jobs):
            return
        time.sleep(0.01)
    states = {j.id: service.store.get(j.id).state for j in jobs}
    raise AssertionError(f"jobs still running after {deadline}s: {states}")


@pytest.fixture
def service(tmp_path):
    svc = SweepService(jobs=1, cache_dir=tmp_path / "cache").start()
    yield svc
    svc.stop(timeout=DEADLINE)


# --- submission codec -----------------------------------------------------


class TestModels:
    def test_raw_submission_decodes_to_a_spec(self):
        spec = submission_to_spec({
            "name": "adhoc",
            "tasks": [{"kind": "serve-square", "params": {"x": 3}}],
        })
        assert spec.name == "adhoc"
        assert spec.tasks[0].kind == "serve-square"

    def test_unknown_target_rejected(self):
        with pytest.raises(ValueError, match="unknown target"):
            submission_to_spec({"target": "fig9"})

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown task kind"):
            submission_to_spec({"tasks": [{"kind": "no-such-kind"}]})

    def test_submission_needs_target_or_tasks(self):
        with pytest.raises(ValueError, match="target.*tasks"):
            submission_to_spec({"name": "empty"})

    def test_target_submission_builds_real_specs(self):
        spec = submission_to_spec({"target": "fig4", "options": {"fast": True}})
        assert spec.name == "figure4"
        assert len(spec.tasks) > 0

    def test_tenant_validation(self):
        assert validate_tenant("alice-1.prod") == "alice-1.prod"
        for bad in ("", ".hidden", "a b", "x" * 65, 42):
            with pytest.raises(ValueError):
                validate_tenant(bad)

    def test_state_machine_rejects_illegal_edges(self):
        assert advance(JobState.QUEUED, JobState.DONE) is JobState.DONE
        with pytest.raises(ValueError, match="illegal job transition"):
            advance(JobState.DONE, JobState.RUNNING)


# --- job store event log --------------------------------------------------


class TestJobStore:
    def test_event_indices_are_dense_and_resumable(self):
        store = JobStore()
        job = store.create("t", spec_of([1]), "fp")
        store.emit(job, "a")
        store.emit(job, "b", extra=1)
        store.emit(job, "c")
        assert [e["i"] for e in store.events_since(job.id, 0)] == [0, 1, 2]
        assert [e["event"] for e in store.events_since(job.id, 1)] == ["b", "c"]
        assert store.events_since(job.id, 99) == []

    def test_wait_events_blocks_until_an_emit(self):
        store = JobStore()
        job = store.create("t", spec_of([1]), "fp")

        def emit_later():
            time.sleep(0.05)
            store.emit(job, "ping")

        threading.Thread(target=emit_later).start()
        batch = store.wait_events(job.id, since=0, timeout=5.0)
        assert [e["event"] for e in batch] == ["ping"]

    def test_wait_events_returns_immediately_for_terminal_jobs(self):
        store = JobStore()
        job = store.create("t", spec_of([1]), "fp")
        store.transition(job, JobState.CANCELLED)
        start = time.monotonic()
        batch = store.wait_events(job.id, since=1, timeout=5.0)
        assert time.monotonic() - start < 1.0
        assert batch == []


# --- the service: dedupe, caching, fan-out --------------------------------


class TestService:
    def test_cross_tenant_dedupe_executes_shared_points_once(self, service):
        # Overlapping grids: alice wants 0..4, bob wants 3..7. The shared
        # points {3, 4} must execute exactly once.
        ja = service.submit(spec_of(range(5), "a"), tenant="alice")
        jb = service.submit(spec_of(range(3, 8), "b"), tenant="bob")
        wait_terminal(service, ja, jb)
        counters = service.stats()["counters"]
        assert counters["serve.points.total"] == 10
        assert counters["serve.points.executed"] == 8  # not 10
        assert counters["serve.points.deduped"] == 2
        assert counters["serve.tenant.bob.points.deduped"] == 2
        # Both jobs still see all their points, including the shared ones.
        assert service.store.get(ja.id).state is JobState.DONE
        jb_dict = service.job_dict(jb.id)
        assert jb_dict["done"] == jb_dict["total"] == 5
        assert service.job_records(jb.id)[spec_of([3]).tasks[0].key][
            "value"] == {"y": 9}

    def test_warm_cache_resubmit_is_instant_done(self, service):
        first = service.submit(spec_of(range(4)), tenant="alice")
        wait_terminal(service, first)
        again = service.submit(spec_of(range(4)), tenant="bob")
        # Fully cache-satisfied: DONE synchronously at submit time.
        assert again.state is JobState.DONE
        assert service.job_dict(again.id)["cache_hits"] == 4
        counters = service.stats()["counters"]
        assert counters["serve.tenant.bob.points.cache_hits"] == 4
        assert counters["serve.points.executed"] == 4

    def test_results_bit_identical_to_serial_executor(self, service, tmp_path):
        spec = spec_of(range(6), "identical")
        serial = run_campaign(spec, jobs=1,
                              cache_dir=str(tmp_path / "serial-cache"))
        job = service.submit(spec, tenant="alice")
        wait_terminal(service, job)
        served = service.store.get(job.id).records
        assert set(served) == set(serial.records)
        for key, record in serial.records.items():
            assert served[key].value == record.value
            assert served[key].status == record.status
        # Same fingerprint => the daemon's cache entries are reusable by
        # a one-shot CLI run against the same directory, and vice versa.
        assert job.fingerprint == spec.fingerprint()

    def test_failed_points_counted_not_fatal(self, service):
        spec = SweepSpec.build("mixed", [
            TaskPoint.make("serve-square", x=1),
            TaskPoint.make("serve-fail", x=2),
        ])
        job = service.submit(spec, tenant="alice")
        wait_terminal(service, job)
        final = service.job_dict(job.id)
        assert final["state"] == "done"
        assert final["failures"] == 1
        assert service.stats()["counters"]["serve.points.failed"] == 1

    def test_cancel_releases_the_job_but_not_shared_points(self, service):
        slow = SweepSpec.build("slow", [
            TaskPoint.make("serve-slow", x=x) for x in range(4)
        ])
        job = service.submit(slow, tenant="alice")
        cancelled = service.cancel(job.id)
        assert cancelled.state is JobState.CANCELLED
        assert service.job_dict(job.id)["state"] == "cancelled"
        # Terminal cancel is idempotent.
        assert service.cancel(job.id).state is JobState.CANCELLED

    def test_job_events_replay_the_whole_lifecycle(self, service):
        job = service.submit(spec_of(range(2)), tenant="alice")
        wait_terminal(service, job)
        events = service.store.events_since(job.id, 0)
        kinds = [e["event"] for e in events]
        assert kinds[0] == "submitted"
        assert kinds.count("result") == 2
        assert kinds[-1] == "state"
        assert events[-1]["state"] == "done"
        assert [e["i"] for e in events] == list(range(len(events)))


# --- graceful shutdown ----------------------------------------------------


class TestDrain:
    def test_drain_checkpoints_every_tenants_job_as_resumable(self, tmp_path):
        service = SweepService(jobs=1, cache_dir=tmp_path / "cache").start()
        slow_a = SweepSpec.build("slow-a", [
            TaskPoint.make("serve-slow", x=x) for x in range(20)
        ])
        slow_b = SweepSpec.build("slow-b", [
            TaskPoint.make("serve-slow", x=x) for x in range(20, 40)
        ])
        ja = service.submit(slow_a, tenant="alice")
        jb = service.submit(slow_b, tenant="bob")
        # Let the pump start chewing, then pull the plug mid-flight.
        deadline = time.monotonic() + DEADLINE
        while service.stats()["counters"].get("serve.points.executed", 0) < 1:
            assert time.monotonic() < deadline
            time.sleep(0.01)
        service.drain(timeout=DEADLINE)

        for job_id, tenant in ((ja.id, "alice"), (jb.id, "bob")):
            final = service.job_dict(job_id)
            assert final["state"] == "interrupted", tenant
            assert final["resumable"] is True, tenant
            assert final["done"] < final["total"], tenant
        counters = service.stats()["counters"]
        assert counters["serve.jobs.interrupted"] == 2
        # Whatever did finish was checkpointed: a resubmission replays it
        # from the cache instead of recomputing.
        executed = counters["serve.points.executed"]
        assert executed >= 1
        service2 = SweepService(jobs=1, cache_dir=tmp_path / "cache").start()
        try:
            resumed = service2.submit(slow_a, tenant="alice")
            hits = service2.job_dict(resumed.id)["cache_hits"]
            done_a = sum(
                1 for r in service.store.get(ja.id).records.values() if r.ok
            )
            assert hits == done_a
        finally:
            service2.stop(timeout=DEADLINE)

    def test_draining_service_rejects_new_submissions(self, tmp_path):
        service = SweepService(jobs=1, cache_dir=tmp_path / "cache").start()
        service.begin_drain()
        with pytest.raises(ServiceDraining):
            service.submit(spec_of([1]), tenant="alice")
        service.drain(timeout=DEADLINE)

    def test_drain_writes_the_service_report(self, tmp_path):
        service = SweepService(jobs=1, cache_dir=tmp_path / "cache").start()
        job = service.submit(spec_of(range(3)), tenant="alice")
        wait_terminal(service, job)
        service.drain(timeout=DEADLINE)
        from repro.obs.report import load_report

        report = load_report(tmp_path / "cache" / "serve")
        assert report["campaign"]["name"] == "serve"
        assert report["counters"]["serve.tenant.alice.points.total"] == 3


# --- HTTP front end + client ----------------------------------------------


class _Daemon:
    """ServeApp on a real socket, driven from a background event loop."""

    def __init__(self, service, worker_token=None):
        self.service = service
        self.worker_token = worker_token
        self.port = None
        self._loop = None
        self._stop = None
        self._ready = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self):
        asyncio.run(self._main())

    async def _main(self):
        app = ServeApp(self.service, worker_token=self.worker_token)
        server = await asyncio.start_server(app.handle, "127.0.0.1", 0)
        self.port = server.sockets[0].getsockname()[1]
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        self._ready.set()
        try:
            await self._stop.wait()
        finally:
            server.close()
            await server.wait_closed()

    def __enter__(self):
        self._thread.start()
        assert self._ready.wait(DEADLINE), "server failed to start"
        return self

    def __exit__(self, *exc_info):
        self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(DEADLINE)


class TestHttp:
    def test_submit_poll_stream_and_result_over_http(self, service):
        with _Daemon(service) as daemon:
            alice = ServeClient(f"http://127.0.0.1:{daemon.port}",
                                tenant="alice")
            bob = ServeClient(f"http://127.0.0.1:{daemon.port}", tenant="bob")
            assert alice.healthz()["ok"] is True

            job = alice.submit({
                "name": "http-sweep",
                "tasks": [{"kind": "serve-square", "params": {"x": x}}
                          for x in range(4)],
            })
            assert job["tenant"] == "alice"
            events = list(alice.stream(job["id"], wait=2.0))
            assert events[-1]["event"] == "state"
            assert events[-1]["state"] == "done"

            final = alice.wait(job["id"], timeout=DEADLINE)
            assert final["state"] == "done"
            assert final["done"] == 4

            result = alice.result(job["id"])
            values = sorted(r["value"]["y"] for r in result["results"].values())
            assert values == [0, 1, 4, 9]

            # Tenancy flows from the client header into accounting.
            job_b = bob.submit({
                "name": "http-sweep-b",
                "tasks": [{"kind": "serve-square", "params": {"x": 9}}],
            })
            bob.wait(job_b["id"], timeout=DEADLINE)
            tenants = {j["tenant"] for j in alice.jobs()}
            assert tenants == {"alice", "bob"}
            assert [j["tenant"] for j in alice.jobs(tenant="bob")] == ["bob"]
            stats = alice.stats()
            assert stats["counters"]["serve.tenant.bob.jobs.submitted"] == 1

    def test_http_errors_are_json_with_status(self, service):
        with _Daemon(service) as daemon:
            client = ServeClient(f"http://127.0.0.1:{daemon.port}")
            with pytest.raises(ServeError) as bad:
                client.submit({"target": "fig9"})
            assert bad.value.status == 400
            assert "unknown target" in bad.value.message
            with pytest.raises(ServeError) as missing:
                client.job("j9999-nope")
            assert missing.value.status == 404
            with pytest.raises(ServeError) as bad_tenant:
                ServeClient(f"http://127.0.0.1:{daemon.port}",
                            tenant="not a tenant!").submit({
                                "tasks": [{"kind": "serve-square",
                                           "params": {"x": 1}}]})
            assert bad_tenant.value.status == 400

    def test_draining_daemon_returns_503(self, service):
        with _Daemon(service) as daemon:
            client = ServeClient(f"http://127.0.0.1:{daemon.port}")
            service.begin_drain()
            with pytest.raises(ServeError) as denied:
                client.submit({"tasks": [{"kind": "serve-square",
                                          "params": {"x": 1}}]})
            assert denied.value.status == 503
            assert client.healthz()["draining"] is True


# --- live observability: /metrics, stats, stitched traces ------------------


class TestObservability:
    def test_prometheus_exposition_has_required_series(self, service):
        job = service.submit(spec_of(range(4)), tenant="alice")
        wait_terminal(service, job)
        samples = parse_metrics(service.prometheus())
        # Every job-state gauge series exists from the first scrape.
        for state in JobState:
            key = ("serve_jobs_total", (("state", state.value),))
            assert key in samples, state
        assert samples[("serve_jobs_total", (("state", "done"),))] == 1
        # Per-tenant counters collapse into labeled families.
        assert samples[
            ("serve_jobs_submitted_total", (("tenant", "alice"),))
        ] == 1
        # The per-tenant SLO latency histograms: submit->first-result
        # and queue-wait, complete with +Inf buckets.
        assert samples[
            ("serve_submit_to_first_result_seconds_bucket",
             (("tenant", "alice"), ("le", "+Inf")))
        ] == 1
        assert samples[
            ("serve_queue_wait_seconds_count", (("tenant", "alice"),))
        ] >= 1
        # Liveness gauges.
        assert samples[("serve_pump_alive", ())] == 1
        assert samples[("serve_local_jobs", ())] == 1
        assert samples[("serve_uptime_seconds", ())] >= 0.0
        assert samples[("serve_queue_depth_points", ())] == 0
        assert samples[("serve_leased_points", ())] == 0
        # Remote-worker liveness: all three state series exist at zero.
        for state in ("live", "suspect", "lost"):
            assert samples[("serve_workers", (("state", state),))] == 0

    def test_metrics_served_over_http(self, service):
        job = service.submit(spec_of(range(2)), tenant="alice")
        wait_terminal(service, job)
        with _Daemon(service) as daemon:
            client = ServeClient(f"http://127.0.0.1:{daemon.port}")
            body = client.metrics()
            assert isinstance(body, str)
            samples = parse_metrics(body)
            assert ("serve_jobs_total", (("state", "done"),)) in samples
            # ?format=prom on /v1/stats is the same exposition.
            alt = client._request("GET", "/v1/stats?format=prom")
            assert set(parse_metrics(alt)) == set(samples)
            # and the plain stats payload stays JSON.
            stats = client.stats()
            assert stats["workers"]["mode"] == "inline"

    def test_stats_reports_workers_and_queue_depths(self, service):
        stats = service.stats()
        workers = stats["workers"]
        assert workers["jobs"] == 1
        assert workers["mode"] == "inline"
        assert workers["pump_alive"] is True
        assert workers["leased_points"] == 0
        assert workers["remote"] == {}
        assert stats["queued_by_tenant"] == {}
        job = service.submit(spec_of(range(3)), tenant="alice")
        wait_terminal(service, job)
        # The tenant's queue shows up (drained back to zero).
        assert service.stats()["queued_by_tenant"].get("alice", 0) == 0

    def test_daemon_trace_stitches_one_tree_per_job(self, tmp_path):
        service = SweepService(jobs=1, cache_dir=tmp_path / "cache").start()
        try:
            ja = service.submit(spec_of(range(3), "a"), tenant="alice")
            jb = service.submit(spec_of(range(10, 13), "b"), tenant="bob")
            wait_terminal(service, ja, jb)
        finally:
            service.stop(timeout=DEADLINE)
        events = read_trace(
            tmp_path / "cache" / "serve" / "trace.jsonl",
            include_rotated=True,
        )
        trees = {t.name: t for t in build_trees(events)}
        assert set(trees) == {
            f"job {ja.id} tenant=alice", f"job {jb.id} tenant=bob",
        }
        for root in trees.values():
            assert root.elapsed is not None  # backfilled from job-done
            tasks = [n for n in root.walk() if n.name == "task.serve-square"]
            assert len(tasks) == 3
            assert {n.trace_id for n in root.walk()} == {root.trace_id}
        # The two jobs are distinct traces.
        assert trees[f"job {ja.id} tenant=alice"].trace_id \
            != trees[f"job {jb.id} tenant=bob"].trace_id

    def test_trace_rotation_is_counted(self, tmp_path):
        service = SweepService(jobs=1, cache_dir=tmp_path / "cache",
                               trace_max_bytes=600).start()
        try:
            for offset in range(0, 40, 10):
                job = service.submit(
                    spec_of(range(offset, offset + 4), f"s{offset}"),
                    tenant="alice",
                )
                wait_terminal(service, job)
            counters = service.stats()["counters"]
        finally:
            service.stop(timeout=DEADLINE)
        assert counters["trace.rotations"] >= 1
        assert service.trace.rotated_path.exists()

    def test_drain_marks_interrupted_jobs_in_the_trace(self, tmp_path):
        service = SweepService(jobs=1, cache_dir=tmp_path / "cache").start()
        slow = SweepSpec.build("slow", [
            TaskPoint.make("serve-slow", x=x) for x in range(20)
        ])
        job = service.submit(slow, tenant="alice")
        deadline = time.monotonic() + DEADLINE
        while service.stats()["counters"].get("serve.points.executed", 0) < 1:
            assert time.monotonic() < deadline
            time.sleep(0.01)
        service.drain(timeout=DEADLINE)
        events = read_trace(
            tmp_path / "cache" / "serve" / "trace.jsonl",
            include_rotated=True,
        )
        assert any(e["event"] == "job-interrupted" and e["job"] == job.id
                   for e in events)
        (root,) = build_trees(events)
        assert root.status == "interrupted"
        assert root.elapsed is not None
        # The spans that did finish before the plug was pulled are there.
        assert any(n.name == "task.serve-slow" for n in root.walk())


# --- remote workers: leases over the service API ---------------------------


def work_once(service, registration):
    """One faithful worker turn: lease -> run_chunk -> complete."""
    out = service.worker_lease(registration["worker_id"])
    lease = out["lease"]
    if lease is None:
        return False
    points = [TaskPoint.make(p["kind"], **p["params"])
              for p in lease["points"]]
    context = (pickle.loads(base64.b64decode(lease["context_b64"]))
               if lease["context_b64"] else {})
    records, snapshot = run_chunk(points, context, lease["fingerprint"],
                                  registration["retries"])
    service.worker_complete(
        registration["worker_id"], lease["id"],
        [json.loads(r.to_json()) for r in records], snapshot,
    )
    return True


class TestWorkerProtocol:
    @pytest.fixture
    def remote(self, tmp_path):
        # jobs=0: no local pool at all - remote leases are the only way
        # work leaves the queue.
        svc = SweepService(jobs=0, cache_dir=tmp_path / "cache",
                           lease_ttl_s=0.5).start()
        yield svc
        svc.stop(timeout=DEADLINE)

    def test_register_lease_complete_runs_a_job(self, remote):
        job = remote.submit(spec_of(range(4)), tenant="alice")
        reg = remote.worker_register(name="unit", pid=123, host="here")
        assert reg["lease_ttl_s"] == 0.5
        assert reg["heartbeat_s"] < reg["lease_ttl_s"]
        while work_once(remote, reg):
            pass
        assert remote.store.get(job.id).state is JobState.DONE
        values = sorted(r["value"]["y"]
                        for r in remote.job_records(job.id).values())
        assert values == [0, 1, 4, 9]
        counters = remote.stats()["counters"]
        assert counters["serve.leases.granted"] == \
            counters["serve.leases.completed"]
        assert counters["serve.points.executed"] == 4
        workers = remote.stats()["workers"]
        assert workers["mode"] == "remote"
        info = workers["remote"][reg["worker_id"]]
        assert info["name"] == "unit" and info["state"] == "live"

    def test_unknown_worker_and_lease_are_gone(self, remote):
        with pytest.raises(UnknownWorker):
            remote.worker_lease("w99-dead")
        reg = remote.worker_register(name="unit")
        with pytest.raises(LeaseGone):
            remote.worker_heartbeat(reg["worker_id"], "l9999-dead")

    def test_heartbeat_keeps_a_slow_chunk_alive(self, remote):
        job = remote.submit(spec_of([5]))
        reg = remote.worker_register(name="slowpoke")
        lease = remote.worker_lease(reg["worker_id"])["lease"]
        # Hold the lease well past its TTL, heartbeating like the
        # runtime does; the reaper must leave it alone.
        end = time.monotonic() + 3 * 0.5
        while time.monotonic() < end:
            beat = remote.worker_heartbeat(reg["worker_id"], lease["id"])
            assert beat["lease_id"] == lease["id"]
            time.sleep(0.1)
        assert remote.stats()["counters"].get("serve.leases.expired", 0) == 0
        points = [TaskPoint.make(p["kind"], **p["params"])
                  for p in lease["points"]]
        records, snapshot = run_chunk(points, {}, lease["fingerprint"], 0)
        remote.worker_complete(reg["worker_id"], lease["id"],
                               [json.loads(r.to_json()) for r in records],
                               snapshot)
        assert remote.store.get(job.id).state is JobState.DONE

    def test_expired_lease_requeues_and_late_result_is_rejected(self, remote):
        job = remote.submit(spec_of([7]))
        reg = remote.worker_register(name="doomed")
        lease = remote.worker_lease(reg["worker_id"])["lease"]
        deadline = time.monotonic() + DEADLINE
        while remote.stats()["counters"].get("serve.leases.expired", 0) < 1:
            assert time.monotonic() < deadline, "lease never expired"
            time.sleep(0.05)
        # The silent worker wakes up late: its results must be dropped,
        # not double-counted.
        points = [TaskPoint.make(p["kind"], **p["params"])
                  for p in lease["points"]]
        records, snapshot = run_chunk(points, {}, lease["fingerprint"], 0)
        with pytest.raises(LeaseGone):
            remote.worker_complete(
                reg["worker_id"], lease["id"],
                [json.loads(r.to_json()) for r in records], snapshot)
        counters = remote.stats()["counters"]
        assert counters["serve.leases.rejected_late"] == 1
        assert counters.get("serve.points.executed", 0) == 0
        # The chunk is back in the queue; a healthy turn finishes the job.
        while work_once(remote, reg):
            pass
        assert remote.store.get(job.id).state is JobState.DONE
        assert remote.stats()["counters"]["serve.points.executed"] == 1

    def test_abandon_requeues_blame_free(self, remote):
        job = remote.submit(spec_of([3]))
        reg = remote.worker_register(name="drainer")
        lease = remote.worker_lease(reg["worker_id"])["lease"]
        out = remote.worker_abandon(reg["worker_id"], lease["id"])
        assert out["requeued"] == 1
        assert remote.scheduler.losses(
            TaskPoint.make("serve-square", x=3).key) == 0
        while work_once(remote, reg):
            pass
        assert remote.store.get(job.id).state is JobState.DONE

    def test_draining_service_starves_workers(self, remote):
        reg = remote.worker_register(name="latecomer")
        remote.submit(spec_of([1]))
        remote.begin_drain()
        out = remote.worker_lease(reg["worker_id"])
        assert out["lease"] is None and out["draining"] is True
        with pytest.raises(ServiceDraining):
            remote.worker_register(name="too-late")


class TestWorkerHttp:
    def test_bad_tokens_rejected_and_counted(self, service):
        with _Daemon(service, worker_token="sekrit") as daemon:
            url = f"http://127.0.0.1:{daemon.port}"
            anon = ServeClient(url)
            with pytest.raises(ServeError) as unauthed:
                anon.worker_register(name="anon")
            assert unauthed.value.status == 401
            with pytest.raises(ServeError) as wrong:
                ServeClient(url, token="guess").worker_register(name="liar")
            assert wrong.value.status == 401
            # Tenant-facing routes stay open: the token guards workers only.
            assert anon.healthz()["ok"] is True
            reg = ServeClient(url, token="sekrit").worker_register(name="ok")
            assert reg["worker_id"]
        assert service.stats()["counters"]["serve.auth.rejected"] == 2

    def test_worker_runtime_completes_a_job_over_http(self, tmp_path):
        svc = SweepService(jobs=0, cache_dir=tmp_path / "cache").start()
        try:
            with _Daemon(svc, worker_token="sekrit") as daemon:
                url = f"http://127.0.0.1:{daemon.port}"
                job = svc.submit(spec_of(range(4), name="remote-sweep"))
                worker = SweepWorker(url, token="sekrit", name="itest",
                                     poll_s=0.05, max_chunks=4,
                                     echo=lambda *a: None)
                assert worker.run() == 0
                assert worker.points_done == 4
                wait_terminal(svc, job)
                assert svc.store.get(job.id).state is JobState.DONE
                values = sorted(r["value"]["y"]
                                for r in svc.job_records(job.id).values())
                assert values == [0, 1, 4, 9]
        finally:
            svc.stop(timeout=DEADLINE)

    def test_worker_with_bad_token_exits_nonzero(self, service):
        with _Daemon(service, worker_token="sekrit") as daemon:
            url = f"http://127.0.0.1:{daemon.port}"
            worker = SweepWorker(url, token="wrong", name="reject",
                                 echo=lambda *a: None)
            assert worker.run() == 1


# --- the durable job log: kill -9 the daemon, jobs survive -----------------


class TestRecovery:
    def test_restart_replays_unfinished_jobs(self, tmp_path):
        cache = tmp_path / "cache"
        first = SweepService(jobs=0, cache_dir=cache)  # never pumps
        job = first.submit(spec_of(range(3)), tenant="alice")
        assert first.store.get(job.id).state is JobState.QUEUED
        # No drain, no stop: the daemon is gone as if SIGKILLed.
        second = SweepService(jobs=1, cache_dir=cache).start()
        try:
            revived = second.store.get(job.id)
            assert revived is not None and revived.tenant == "alice"
            wait_terminal(second, revived)
            assert second.store.get(job.id).state is JobState.DONE
            assert len(second.job_records(job.id)) == 3
            assert second.stats()["counters"]["serve.jobs.recovered"] == 1
        finally:
            second.stop(timeout=DEADLINE)

    def test_replay_skips_terminals_and_duplicates_no_compute(self, tmp_path):
        cache = tmp_path / "cache"
        first = SweepService(jobs=0, cache_dir=cache)
        done = first.submit(spec_of(range(3), name="done-before-crash"))
        reg = first.worker_register(name="w")
        while work_once(first, reg):
            pass
        assert first.store.get(done.id).state is JobState.DONE
        partial = first.submit(spec_of(range(5), name="half-cached"))
        assert partial.cache_hits == 3
        axed = first.submit(spec_of([9], name="cancelled-before-crash"))
        first.cancel(axed.id)

        second = SweepService(jobs=1, cache_dir=cache).start()
        try:
            assert second.store.get(done.id) is None  # terminal: stays dead
            assert second.store.get(axed.id) is None
            revived = second.store.get(partial.id)
            assert revived is not None
            wait_terminal(second, revived)
            assert second.store.get(partial.id).state is JobState.DONE
            assert len(second.job_records(partial.id)) == 5
            counters = second.stats()["counters"]
            # Only the two points the crash interrupted actually ran.
            assert counters["serve.points.executed"] == 2
            assert counters["serve.points.cache_hits"] == 3
        finally:
            second.stop(timeout=DEADLINE)

    def test_corrupt_log_lines_are_counted_not_fatal(self, tmp_path):
        cache = tmp_path / "cache"
        first = SweepService(jobs=0, cache_dir=cache)
        job = first.submit(spec_of([1, 2]))
        log_path = cache / "serve" / "jobs" / "submissions.ndjson"
        with open(log_path, "a", encoding="utf-8") as fh:
            fh.write("this is not json\n")
            fh.write('{"op": "submit", "id": "j9999-torn"')  # torn write
        second = SweepService(jobs=1, cache_dir=cache).start()
        try:
            revived = second.store.get(job.id)
            assert revived is not None
            wait_terminal(second, revived)
            assert second.stats()["counters"][
                "serve.joblog.corrupt_lines"] == 2
        finally:
            second.stop(timeout=DEADLINE)

    def test_undecodable_entry_marked_terminal_not_replayed_forever(
            self, tmp_path):
        cache = tmp_path / "cache"
        first = SweepService(jobs=0, cache_dir=cache)
        first.submit(spec_of([4]))
        log_path = cache / "serve" / "jobs" / "submissions.ndjson"
        with open(log_path, "a", encoding="utf-8") as fh:
            fh.write(json.dumps({
                "op": "submit", "id": "j9998-bogus", "tenant": "default",
                "created": 0.0, "payload": {"target": "no-such-target"},
            }) + "\n")
        second = SweepService(jobs=1, cache_dir=cache).start()
        try:
            assert second.stats()["counters"][
                "serve.jobs.recovery_failed"] == 1
            assert second.store.get("j9998-bogus") is None
        finally:
            second.stop(timeout=DEADLINE)
        # The failure was logged terminal: a third start stays clean.
        third = SweepService(jobs=1, cache_dir=cache).start()
        try:
            assert "serve.jobs.recovery_failed" not in \
                third.stats()["counters"]
        finally:
            third.stop(timeout=DEADLINE)


class TestCancelBeforeDispatch:
    def test_cancel_queued_job_records_terminal_and_prunes(self, tmp_path):
        cache = tmp_path / "cache"
        svc = SweepService(jobs=0, cache_dir=cache)  # nothing dispatches
        job = svc.submit(spec_of(range(3)))
        cancelled = svc.cancel(job.id)
        assert cancelled.state is JobState.CANCELLED
        events = svc.store.events_since(job.id, 0)
        assert any(e.get("event") == "state"
                   and e.get("state") == "cancelled" for e in events)
        assert svc.stats()["counters"]["serve.points.cancelled"] == 3
        assert not svc.scheduler.has_pending
        # Durably terminal: a restart must not resurrect it.
        again = SweepService(jobs=1, cache_dir=cache).start()
        try:
            assert again.store.get(job.id) is None
        finally:
            again.stop(timeout=DEADLINE)

    def test_cancel_interrupted_job_on_drained_daemon(self, tmp_path):
        svc = SweepService(jobs=0, cache_dir=tmp_path / "cache").start()
        job = svc.submit(spec_of([6]))
        svc.drain(timeout=DEADLINE)
        assert svc.store.get(job.id).state is JobState.INTERRUPTED
        assert svc.cancel(job.id).state is JobState.CANCELLED

    def test_cancel_spares_chunks_other_jobs_still_want(self, tmp_path):
        svc = SweepService(jobs=0, cache_dir=tmp_path / "cache")
        mine = svc.submit(spec_of([1, 2]), tenant="alice")
        svc.submit(spec_of([2, 3]), tenant="bob")  # shares x=2
        svc.cancel(mine.id)
        reg = svc.worker_register(name="probe")
        leased = []
        out = svc.worker_lease(reg["worker_id"])
        while out["lease"] is not None:
            leased.extend(p["params"]["x"] for p in out["lease"]["points"])
            out = svc.worker_lease(reg["worker_id"])
        assert sorted(leased) == [2, 3]  # x=1 pruned, x=2 survives for bob


# --- client retry policy ---------------------------------------------------


class _ScriptedClient(ServeClient):
    """ServeClient with a scripted transport: raises, then answers."""

    def __init__(self, *errors):
        super().__init__("http://127.0.0.1:1", retries=2,
                         backoff=BackoffPolicy(base_s=0.0))
        self.errors = list(errors)
        self.calls = 0

    def _request_once(self, method, path, payload=None, timeout=None):
        self.calls += 1
        if self.errors:
            raise self.errors.pop(0)
        return {"ok": True}


class TestClientRetry:
    def test_transport_errors_are_retried(self):
        client = _ScriptedClient(ConnectionRefusedError("no daemon"),
                                 OSError("reset"))
        assert client.healthz() == {"ok": True}
        assert client.calls == 3

    def test_5xx_is_retried(self):
        client = _ScriptedClient(ServeError(503, "draining"))
        assert client.healthz() == {"ok": True}
        assert client.calls == 2

    def test_4xx_fails_fast(self):
        client = _ScriptedClient(ServeError(400, "bad payload"))
        with pytest.raises(ServeError):
            client.healthz()
        assert client.calls == 1

    def test_exhausted_retries_raise_the_last_error(self):
        client = _ScriptedClient(*[OSError("down")] * 5)
        with pytest.raises(OSError):
            client.healthz()
        assert client.calls == 3  # 1 + retries(2)
