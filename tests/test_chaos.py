"""Deterministic fault injection (repro.chaos) and task deadlines (repro.watchdog)."""

import time

import pytest

from repro import chaos, watchdog
from repro.chaos import (
    CORRUPTION_MARKER,
    ChaosInjector,
    ChaosSpec,
    ChaosTransientError,
    coerce_spec,
    stable_fraction,
)


class TestStableFraction:
    def test_deterministic(self):
        assert stable_fraction("a", 1) == stable_fraction("a", 1)

    def test_in_unit_interval(self):
        for i in range(64):
            assert 0.0 <= stable_fraction("seed", i) < 1.0

    def test_sensitive_to_every_part(self):
        base = stable_fraction("seed", "key", 1)
        assert base != stable_fraction("other", "key", 1)
        assert base != stable_fraction("seed", "other", 1)
        assert base != stable_fraction("seed", "key", 2)

    def test_parts_are_delimited_not_concatenated(self):
        assert stable_fraction("ab", "c") != stable_fraction("a", "bc")


class TestChaosSpec:
    def test_parse_full_spec(self):
        spec = ChaosSpec.parse("crash:0.1,hang:0.05,transient:0.2,hang_s:3")
        assert spec.crash == 0.1 and spec.hang == 0.05
        assert spec.transient == 0.2 and spec.hang_s == 3.0
        assert spec.corrupt == 0.0

    def test_parse_tolerates_spaces_and_empty_parts(self):
        spec = ChaosSpec.parse(" crash:0.5 , ,hang:0.25 ")
        assert spec.crash == 0.5 and spec.hang == 0.25

    def test_parse_rejects_unknown_fault(self):
        with pytest.raises(ValueError, match="explode"):
            ChaosSpec.parse("explode:0.5")

    def test_parse_rejects_malformed_rate(self):
        with pytest.raises(ValueError, match="crash"):
            ChaosSpec.parse("crash:lots")

    def test_rates_validated(self):
        with pytest.raises(ValueError):
            ChaosSpec(crash=1.5)
        with pytest.raises(ValueError):
            ChaosSpec(hang=-0.1)
        with pytest.raises(ValueError):
            ChaosSpec(hang_s=-1.0)

    def test_describe(self):
        assert ChaosSpec().describe() == "inert"
        assert ChaosSpec(crash=0.1, transient=0.2).describe() == (
            "crash:0.1,transient:0.2"
        )

    def test_coerce_spec(self):
        assert coerce_spec(None) is None
        spec = ChaosSpec(crash=0.5)
        assert coerce_spec(spec) is spec
        assert coerce_spec("crash:0.5") == spec


class TestChaosInjector:
    def test_decisions_deterministic_per_seed(self):
        a = ChaosInjector(ChaosSpec(crash=0.5), seed="s1")
        b = ChaosInjector(ChaosSpec(crash=0.5), seed="s1")
        c = ChaosInjector(ChaosSpec(crash=0.5), seed="s2")
        keys = [f"key-{i}" for i in range(32)]
        assert [a.will_crash(k) for k in keys] == [b.will_crash(k) for k in keys]
        assert [a.will_crash(k) for k in keys] != [c.will_crash(k) for k in keys]

    def test_rates_zero_and_one(self):
        never = ChaosInjector(ChaosSpec(), seed="s")
        always = ChaosInjector(
            ChaosSpec(crash=1.0, hang=1.0, transient=1.0, corrupt=1.0),
            seed="s",
        )
        for i in range(16):
            key = f"key-{i}"
            assert not never.will_crash(key)
            assert not never.will_hang(key)
            assert not never.will_fault(key, 1)
            assert not never.will_corrupt(key)
            assert always.will_crash(key)
            assert always.will_hang(key)
            assert always.will_fault(key, 1)
            assert always.will_corrupt(key)

    def test_transient_is_rolled_per_attempt(self):
        injector = ChaosInjector(ChaosSpec(transient=0.5), seed="s")
        rolls = [injector.will_fault("key", attempt) for attempt in range(1, 40)]
        assert any(rolls) and not all(rolls)  # retries can escape

    def test_on_task_raises_transient(self):
        injector = ChaosInjector(ChaosSpec(transient=1.0), seed="s")
        with pytest.raises(ChaosTransientError):
            injector.on_task("key", 1)

    def test_crash_suppressed_without_allow_exit(self):
        # With allow_exit=False the poison roll is recorded, not executed:
        # reaching the assertion at all is the point of this test.
        injector = ChaosInjector(ChaosSpec(crash=1.0), seed="s",
                                 allow_exit=False)
        injector.on_task("key", 1)

    def test_hang_honours_armed_deadline(self):
        injector = ChaosInjector(ChaosSpec(hang=1.0, hang_s=30.0), seed="s")
        started = time.monotonic()
        with watchdog.deadline(0.1):
            with pytest.raises(watchdog.DeadlineExceeded):
                injector.on_task("key", 1)
        assert time.monotonic() - started < 5.0

    def test_short_hang_completes_without_deadline(self):
        injector = ChaosInjector(ChaosSpec(hang=1.0, hang_s=0.05), seed="s")
        started = time.monotonic()
        injector.on_task("key", 1)
        assert time.monotonic() - started >= 0.05

    def test_corrupt_line_appends_marker(self):
        injector = ChaosInjector(ChaosSpec(corrupt=1.0), seed="s")
        line = '{"key": "k", "value": 42}'
        mangled = injector.corrupt_line(line, "k")
        assert mangled != line
        assert mangled.endswith(CORRUPTION_MARKER)
        assert "\n" not in mangled  # must stay a single JSONL line

    def test_corrupt_line_noop_at_rate_zero(self):
        injector = ChaosInjector(ChaosSpec(), seed="s")
        assert injector.corrupt_line("payload", "k") == "payload"


class TestInjectionContext:
    def test_none_spec_is_noop(self):
        with chaos.injection(None, "seed") as injector:
            assert injector is None
            assert chaos.active() is None

    def test_install_and_restore(self):
        assert chaos.active() is None
        with chaos.injection(ChaosSpec(transient=1.0), "seed") as injector:
            assert chaos.active() is injector
            with pytest.raises(ChaosTransientError):
                chaos.on_task("key", 1)
        assert chaos.active() is None
        chaos.on_task("key", 1)  # module hook is a no-op again

    def test_module_corrupt_line_hook(self):
        assert chaos.corrupt_line("line", "k") == "line"
        with chaos.injection(ChaosSpec(corrupt=1.0), "seed"):
            assert chaos.corrupt_line("line", "k").endswith(CORRUPTION_MARKER)

    def test_nested_injection_restores_outer(self):
        with chaos.injection(ChaosSpec(crash=1.0), "outer") as outer:
            with chaos.injection(ChaosSpec(), "inner") as inner:
                assert chaos.active() is inner
            assert chaos.active() is outer


class TestWatchdog:
    def test_disarmed_by_default(self):
        assert not watchdog.active()
        assert watchdog.remaining() is None
        watchdog.check()  # no-op, must not raise

    def test_none_deadline_is_noop(self):
        with watchdog.deadline(None):
            assert not watchdog.active()

    def test_expiry_raises_with_budget_and_elapsed(self):
        with watchdog.deadline(0.02):
            assert watchdog.active()
            assert watchdog.remaining() <= 0.02
            time.sleep(0.03)
            with pytest.raises(watchdog.DeadlineExceeded) as excinfo:
                watchdog.check()
        assert excinfo.value.budget_s == 0.02
        assert excinfo.value.elapsed_s >= 0.02
        assert not watchdog.active()  # disarmed on exit

    def test_unexpired_deadline_passes(self):
        with watchdog.deadline(30.0):
            watchdog.check()

    def test_nested_deadline_keeps_earlier_expiry(self):
        with watchdog.deadline(30.0):
            outer_remaining = watchdog.remaining()
            with watchdog.deadline(0.01):
                assert watchdog.remaining() <= 0.01
                time.sleep(0.02)
                with pytest.raises(watchdog.DeadlineExceeded):
                    watchdog.check()
            # Inner arm/expiry never extends or clobbers the outer budget.
            assert watchdog.remaining() <= outer_remaining
            watchdog.check()

    def test_inner_deadline_cannot_extend_outer(self):
        with watchdog.deadline(0.02):
            with watchdog.deadline(30.0):
                time.sleep(0.03)
                with pytest.raises(watchdog.DeadlineExceeded):
                    watchdog.check()

    def test_not_a_convergence_error(self):
        # The solver's strategy chain catches ConvergenceError; an expiry
        # must unwind past it, not feed the next fallback strategy.
        from repro.spice import ConvergenceError

        assert not issubclass(watchdog.DeadlineExceeded, ConvergenceError)

    def test_deadline_restored_after_exception(self):
        with pytest.raises(RuntimeError):
            with watchdog.deadline(5.0):
                raise RuntimeError("task blew up")
        assert not watchdog.active()


class TestNewtonDeadline:
    def test_deadline_interrupts_a_dc_solve(self):
        # An armed watchdog fires from inside the Newton iteration: the
        # solve raises DeadlineExceeded (not ConvergenceError) mid-flight
        # instead of letting the strategy chain grind through fallbacks.
        from repro import PVT, VrefSelect
        from repro.regulator import solve_regulator

        with watchdog.deadline(1e-9):
            with pytest.raises(watchdog.DeadlineExceeded):
                solve_regulator(PVT("fs", 1.0, 125.0), VrefSelect.VREF74)


# --- distributed tracing under worker failure ------------------------------


from repro.campaign import SweepSpec, TaskPoint, run_campaign, task  # noqa: E402
from repro.obs.stitch import build_trees  # noqa: E402
from repro.obs.trace import read_trace  # noqa: E402


@task("chaos-exit")
def _chaos_exit(params, context):
    import os

    # The poison point kills its worker outright - no exception, no
    # cleanup - exactly like a segfault or the OOM killer.
    if params["x"] == context.get("poison"):
        os._exit(chaos.CRASH_EXIT_CODE)
    return {"y": params["x"] ** 2}


class TestTraceUnderFailure:
    """A crashed worker must not tear the stitched trace: the parent
    synthesizes the quarantined point's span, so the tree stays
    well-formed with the casualty marked ``crashed``."""

    def test_crashed_point_appears_as_crashed_span(self, tmp_path):
        tasks = [TaskPoint.make("chaos-exit", x=i) for i in range(8)]
        spec = SweepSpec.build("poison-trace", tasks,
                               context={"poison": 3})
        run_campaign(spec, jobs=2, chunksize=2,
                     cache_dir=str(tmp_path), observe=True)

        events = read_trace(tmp_path / "trace.jsonl")
        trees = build_trees(events)
        assert len(trees) == 1  # one causal tree despite the casualties
        root = trees[0]
        assert root.name == "run poison-trace"
        spans = list(root.walk())
        assert {n.trace_id for n in spans} == {root.trace_id}

        task_spans = [n for n in spans if n.name == "task.chaos-exit"]
        assert len(task_spans) == 8  # every point accounted for
        crashed = [n for n in task_spans if n.status == "crashed"]
        poison_key = [p for p in tasks if p.param("x") == 3][0].key
        assert len(crashed) == 1
        assert crashed[0].key == poison_key
        assert all(n.status == "ok"
                   for n in task_spans if n is not crashed[0])
