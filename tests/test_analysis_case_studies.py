"""Table I case-study definitions and DRV ladder."""

import pytest

from repro.analysis.case_studies import (
    CASE_STUDIES,
    case_study,
    render_table1,
    table1_rows,
)
from repro.devices.pvt import PVT

TINY_GRID = [PVT("fs", 1.1, 125.0)]


class TestDefinitions:
    def test_ten_scenarios(self):
        assert len(CASE_STUDIES) == 10
        names = [cs.name for cs in CASE_STUDIES]
        assert names == [
            "CS1-1", "CS1-0", "CS2-1", "CS2-0", "CS3-1",
            "CS3-0", "CS4-1", "CS4-0", "CS5-1", "CS5-0",
        ]

    def test_cs1_signs_match_table_i(self):
        cs = case_study("CS1-1")
        v = cs.variation
        assert (v.mpcc1, v.mncc1, v.mpcc2, v.mncc2, v.mncc3, v.mncc4) == (
            -6, -6, +6, +6, -6, +6
        )

    def test_cs5_repeats_cs2_in_64_cells(self):
        cs2, cs5 = case_study("CS2-1"), case_study("CS5-1")
        assert cs5.variation == cs2.variation
        assert cs5.n_cells == 64 and cs2.n_cells == 1

    def test_pairs_are_mirrors(self):
        for family in ("CS1", "CS2", "CS3", "CS4", "CS5"):
            one = case_study(f"{family}-1")
            zero = case_study(f"{family}-0")
            assert zero.variation == one.variation.mirrored()
            assert one.degrades == 1 and zero.degrades == 0

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            case_study("CS9-1")

    def test_family(self):
        assert case_study("CS3-0").family == "CS3"


class TestDRVLadder:
    @pytest.fixture(scope="class")
    def rows(self):
        return table1_rows(pvt_grid=TINY_GRID)

    def test_ladder_ordering(self, rows):
        """Paper Table I: DRV(CS1) > DRV(CS2) > DRV(CS3) > DRV(CS4)."""
        drv = {row.case.name: row.drv_ds for row in rows}
        assert drv["CS1-1"] > drv["CS2-1"] > drv["CS3-1"] > drv["CS4-1"]

    def test_mirrored_rows_agree(self, rows):
        drv = {row.case.name: row.drv_ds for row in rows}
        for family in ("CS1", "CS2", "CS3", "CS4"):
            assert drv[f"{family}-1"] == pytest.approx(drv[f"{family}-0"], abs=5e-3)

    def test_cs5_equals_cs2(self, rows):
        """Same variation, same DRV - only the regulator load differs."""
        drv = {row.case.name: row.drv_ds for row in rows}
        assert drv["CS5-1"] == pytest.approx(drv["CS2-1"], abs=1e-6)

    def test_degraded_state_column(self, rows):
        """CSx-1 rows are set by DRV_DS1, CSx-0 rows by DRV_DS0."""
        for row in rows:
            if row.case.degrades == 1:
                assert row.drv_ds == row.drv_ds1 >= row.drv_ds0
            else:
                assert row.drv_ds == row.drv_ds0 >= row.drv_ds1

    def test_render(self, rows):
        text = render_table1(rows)
        assert "Table I" in text and "CS5-0" in text and "mV" in text
