"""Address decoder and the AF fault classes."""

import pytest

from repro.march import march_c_minus, mats_plus, run_march
from repro.sram import AddressDecoder, DecoderFault, LowPowerSRAM, SRAMConfig

CFG = SRAMConfig(n_words=16, word_bits=4)


def _memory_with(fault: DecoderFault) -> LowPowerSRAM:
    decoder = AddressDecoder(CFG.n_words)
    decoder.inject(fault)
    return LowPowerSRAM(CFG, decoder=decoder)


class TestDecoder:
    def test_identity_by_default(self):
        decoder = AddressDecoder(8)
        assert decoder.rows(5) == [5]
        assert not decoder.is_faulty

    def test_bounds(self):
        decoder = AddressDecoder(8)
        with pytest.raises(IndexError):
            decoder.rows(8)
        with pytest.raises(IndexError):
            decoder.inject(DecoderFault("none", 9))
        with pytest.raises(IndexError):
            decoder.inject(DecoderFault("wrong", 0, (12,)))

    def test_fault_kinds(self):
        decoder = AddressDecoder(8)
        decoder.inject(DecoderFault("none", 1))
        decoder.inject(DecoderFault("wrong", 2, (5,)))
        decoder.inject(DecoderFault("multiple", 3, (6, 7)))
        assert decoder.rows(1) == []
        assert decoder.rows(2) == [5]
        assert decoder.rows(3) == [3, 6, 7]
        decoder.clear()
        assert decoder.rows(1) == [1]

    def test_validation(self):
        with pytest.raises(ValueError, match="kind"):
            DecoderFault("sometimes", 0)
        with pytest.raises(ValueError, match="target rows"):
            DecoderFault("wrong", 0)


class TestFunctionalEffects:
    def test_af1_reads_precharge(self):
        m = _memory_with(DecoderFault("none", 3))
        m.write(3, 0x0)
        assert m.read(3) == CFG.word_mask  # all-ones precharge background

    def test_af3_accesses_other_row(self):
        m = _memory_with(DecoderFault("wrong", 2, (9,)))
        m.write(2, 0x5)
        assert m.peek_bit(9, 0) == 1  # landed in row 9
        assert m.peek_bit(2, 0) == 0
        assert m.read(2) == 0x5  # read follows the same wrong row

    def test_af2_wired_or_read(self):
        m = _memory_with(DecoderFault("multiple", 4, (11,)))
        m.force_bit(11, 2, 1)
        m.write(4, 0x1)  # also writes row 11 -> 0x1, clearing bit 2 there
        assert m.read(4) == 0x1
        m.force_bit(11, 3, 1)
        assert m.read(4) == 0x9  # OR of rows 4 and 11


class TestMarchDetection:
    """MATS+ is the minimal test guaranteeing AF detection [10]."""

    @pytest.mark.parametrize(
        "fault",
        [
            DecoderFault("none", 0),
            DecoderFault("none", 15),
            DecoderFault("wrong", 3, (10,)),
            DecoderFault("wrong", 10, (3,)),
            DecoderFault("multiple", 2, (12,)),
            DecoderFault("multiple", 12, (2,)),
        ],
        ids=lambda f: f"{f.kind}@{f.addr}",
    )
    def test_mats_plus_detects_all_afs(self, fault):
        assert run_march(mats_plus(), _memory_with(fault)).detected

    def test_march_c_minus_also_detects(self):
        fault = DecoderFault("wrong", 3, (10,))
        assert run_march(march_c_minus(), _memory_with(fault)).detected

    def test_healthy_decoder_passes(self):
        assert run_march(mats_plus(), LowPowerSRAM(CFG)).passed
