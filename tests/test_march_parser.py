"""March notation parser: round trips and error handling."""

import pytest
from hypothesis import given, strategies as st

from repro.march import march_m_lz, standard_tests
from repro.march.dsl import DSM, WUP, AddressOrder, MarchTest, element, read, write
from repro.march.parser import MarchParseError, parse_library_or_custom, parse_march


class TestParsing:
    def test_paper_algorithm(self):
        test = parse_march("{ u(w1); DSM; WUP; u(r1,w0,r0); DSM; WUP; u(r0) }")
        assert str(test).endswith(str(march_m_lz()).split("= ", 1)[1])
        assert test.complexity() == "5N+4"

    def test_named_test(self):
        test = parse_march("March X = { u(w0); d(r0) }")
        assert test.name == "March X"

    def test_name_override(self):
        test = parse_march("March X = { u(w0) }", name="Mine")
        assert test.name == "Mine"

    def test_braceless_form(self):
        test = parse_march("a(w0); u(r0,w1)")
        assert test.length(10) == 30

    def test_dsm_dwell_suffix(self):
        test = parse_march("{ u(w1); DSM[2ms]; WUP; u(r1); DSM[500us]; WUP; u(r1) }")
        assert test.ds_intervals() == [2e-3, 500e-6]

    def test_whitespace_insensitive(self):
        a = parse_march("{u(w1);DSM;WUP;u(r1)}")
        b = parse_march("{ u( w1 ) ; DSM ; WUP ; u( r1 ) }")
        assert str(a) == str(b)


class TestErrors:
    @pytest.mark.parametrize(
        "text",
        [
            "{ u(w2) }",          # bad data value
            "{ x(w0) }",          # bad order
            "{ u() }",            # empty ops
            "{ u(w0); DSM[3h] }", # bad unit
            "{ u(w0)",            # unbalanced brace
            "{ }",                # empty test
            "{ q }",              # garbage element
        ],
    )
    def test_rejected(self, text):
        with pytest.raises(MarchParseError):
            parse_march(text)


class TestRoundTrip:
    @given(
        st.lists(
            st.one_of(
                st.builds(
                    lambda order, ops: element(order, *ops),
                    st.sampled_from(list(AddressOrder)),
                    st.lists(
                        st.builds(
                            lambda k, v: read(v) if k else write(v),
                            st.booleans(), st.integers(0, 1),
                        ),
                        min_size=1, max_size=4,
                    ),
                ),
                st.just(DSM()),
                st.just(WUP()),
            ),
            min_size=1, max_size=6,
        )
    )
    def test_str_parse_identity(self, elements):
        original = MarchTest("gen", tuple(elements))
        parsed = parse_march(str(original))
        assert str(parsed) == str(original)
        assert parsed.length(64) == original.length(64)


class TestLibraryResolution:
    def test_library_name(self):
        assert parse_library_or_custom("March m-LZ") is not None
        assert parse_library_or_custom("MATS+").complexity() == "5N"

    def test_custom_fallback(self):
        test = parse_library_or_custom("{ u(w0); u(r0) }")
        assert test.name == "custom"

    def test_every_library_test_round_trips(self):
        for name, test in standard_tests().items():
            parsed = parse_march(str(test))
            assert parsed.name == name
            assert str(parsed) == str(test)
