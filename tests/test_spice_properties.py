"""Property-based checks of the MNA solver on randomised networks.

For arbitrary linear resistor networks with voltage/current sources, the
Newton solver must agree with a directly-assembled linear MNA solve - this
catches stamp sign errors, branch-index bookkeeping bugs and gmin leakage
far more broadly than hand-picked circuits.

The second half pits the compiled assembly plan against the per-element
``Element.stamp`` reference oracle on randomised *device* networks
(MOSFETs with non-unit multipliers, capacitors with backward-Euler
companions, sources under a partial source-stepping scale): both paths
must produce the same residual and Jacobian to within ulp-level rounding,
and the same DC solutions to within nanovolts.
"""

import numpy as np
import pytest
from hypothesis import assume, given, settings, strategies as st

from repro.spice import Circuit, solve_dc
from repro.verify.tolerances import (
    ASSEMBLY_ATOL,
    ASSEMBLY_RTOL,
    DC_BACKEND_AGREEMENT_V,
)


@st.composite
def linear_networks(draw):
    """A random connected resistor network with one vsource and isources."""
    n_nodes = draw(st.integers(2, 6))
    nodes = [f"n{i}" for i in range(n_nodes)]
    circuit = Circuit("random")
    # Spanning chain to ground keeps everything connected.
    chain = ["0"] + nodes
    resistors = []
    for i in range(len(chain) - 1):
        r = draw(st.floats(10.0, 1e5))
        resistors.append((chain[i], chain[i + 1], r))
    # Extra random edges.
    extra = draw(st.integers(0, 4))
    for k in range(extra):
        a = draw(st.sampled_from(chain))
        b = draw(st.sampled_from(chain))
        if a == b:
            continue
        r = draw(st.floats(10.0, 1e5))
        resistors.append((a, b, r))
    for idx, (a, b, r) in enumerate(resistors):
        circuit.resistor(f"r{idx}", a, b, r)
    v = draw(st.floats(-5.0, 5.0))
    circuit.vsource("vs", nodes[0], "0", v)
    n_isrc = draw(st.integers(0, 2))
    for k in range(n_isrc):
        node = draw(st.sampled_from(nodes))
        i = draw(st.floats(-1e-3, 1e-3))
        circuit.isource(f"is{k}", "0", node, i)
    return circuit


def _direct_solve(circuit: Circuit) -> np.ndarray:
    """Assemble and solve the linear MNA system with plain numpy."""
    from repro.spice.elements import CurrentSource, Resistor, VoltageSource

    n_nodes = circuit.node_count - 1
    offsets = circuit.branch_offsets()
    n = circuit.unknown_count()
    G = np.zeros((n, n))
    rhs = np.zeros(n)
    for el in circuit.elements:
        if isinstance(el, Resistor):
            g = 1.0 / el.resistance
            for a, b, sign in ((el.a, el.a, 1), (el.b, el.b, 1), (el.a, el.b, -1), (el.b, el.a, -1)):
                if a and b:
                    G[a - 1, b - 1] += sign * g
        elif isinstance(el, VoltageSource):
            k = offsets[el.name]
            if el.plus:
                G[el.plus - 1, k] += 1.0
                G[k, el.plus - 1] += 1.0
            if el.minus:
                G[el.minus - 1, k] -= 1.0
                G[k, el.minus - 1] -= 1.0
            rhs[k] = el.voltage
        elif isinstance(el, CurrentSource):
            if el.a:
                rhs[el.a - 1] -= el.current
            if el.b:
                rhs[el.b - 1] += el.current
    # Match the solver's gmin shunt for an apples-to-apples comparison.
    for row in range(n_nodes):
        G[row, row] += 1e-12
    return np.linalg.solve(G, rhs)


class TestLinearNetworkEquivalence:
    @settings(max_examples=50, deadline=None)
    @given(linear_networks())
    def test_newton_matches_direct_solve(self, circuit):
        expected = _direct_solve(circuit)
        solution = solve_dc(circuit)
        assert np.allclose(solution.x, expected, rtol=1e-7, atol=1e-9)

    @settings(max_examples=25, deadline=None)
    @given(linear_networks())
    def test_kcl_at_every_node(self, circuit):
        """Total source branch current balances through the network."""
        solution = solve_dc(circuit)
        # The residual at the solution must be numerically zero: re-assemble.
        from repro.spice.dc import _assemble

        residual, _ = _assemble(circuit, solution.x, 1e-12, 1.0)
        assert np.max(np.abs(residual)) < 1e-9

    @settings(max_examples=25, deadline=None)
    @given(linear_networks(), st.floats(0.1, 3.0))
    def test_linearity_under_source_scaling(self, circuit, scale):
        """Scaling the only vsource scales every node voltage linearly
        (when no current sources are present)."""
        from repro.spice.elements import CurrentSource

        if any(isinstance(el, CurrentSource) for el in circuit.elements):
            return
        base = solve_dc(circuit).x.copy()
        circuit.element("vs").voltage *= scale
        scaled = solve_dc(circuit).x
        assert np.allclose(scaled, base * scale, rtol=1e-6, atol=1e-9)


@st.composite
def device_circuits(draw):
    """A random mixed network: resistor chain, MOSFETs, caps and sources.

    The resistor spanning chain keeps every node resistively tied to
    ground, so the DC operating point is well-posed regardless of where
    the devices land.  MOSFET multipliers are deliberately non-unit: the
    compiled plan folds them into the device's ``i0`` up front, which is
    exact only to rounding.
    """
    from repro.devices import CORNERS, MosfetModel, nmos_params, pmos_params

    n_nodes = draw(st.integers(2, 6))
    nodes = [f"n{i}" for i in range(n_nodes)]
    chain = ["0"] + nodes
    circuit = Circuit("random-devices")
    for i in range(len(chain) - 1):
        circuit.resistor(f"r{i}", chain[i], chain[i + 1], draw(st.floats(1e3, 1e7)))
    circuit.vsource("vs", nodes[0], "0", draw(st.floats(0.2, 1.2)))
    corner = CORNERS[draw(st.sampled_from(["typical", "fast", "slow", "fs", "sf"]))]
    temp_c = draw(st.sampled_from([-40.0, 25.0, 125.0]))
    for k in range(draw(st.integers(1, 4))):
        d = draw(st.sampled_from(chain))
        g = draw(st.sampled_from(chain))
        s = draw(st.sampled_from(chain))
        if draw(st.booleans()):
            params = nmos_params(f"m{k}", 120e-9)
        else:
            params = pmos_params(f"m{k}", 240e-9)
        circuit.mosfet(
            f"m{k}", d, g, s, MosfetModel(params, corner, temp_c),
            multiplier=draw(st.floats(0.5, 4.0)),
        )
    for k in range(draw(st.integers(0, 3))):
        a = draw(st.sampled_from(chain))
        b = draw(st.sampled_from(chain))
        if a != b:
            circuit.capacitor(f"c{k}", a, b, draw(st.floats(1e-15, 1e-9)))
    for k in range(draw(st.integers(0, 2))):
        node = draw(st.sampled_from(nodes))
        circuit.isource(f"i{k}", "0", node, draw(st.floats(-1e-4, 1e-4)))
    return circuit


class TestCompiledVsReference:
    """The compiled plan against the Element.stamp oracle (the tentpole's
    core correctness contract)."""

    @staticmethod
    def _random_state(data, n):
        values = data.draw(
            st.lists(st.floats(-1.5, 1.5), min_size=n, max_size=n),
            label="state",
        )
        return np.asarray(values)

    @settings(max_examples=40, deadline=None)
    @given(device_circuits(), st.data())
    def test_dc_assembly_matches_reference(self, circuit, data):
        from repro.spice.compiled import compiled_plan
        from repro.spice.dc import _assemble, _assign_branch_indices

        _assign_branch_indices(circuit)
        x = self._random_state(data, circuit.unknown_count())
        gmin = data.draw(st.sampled_from([0.0, 1e-12, 1e-6]), label="gmin")
        scale = data.draw(st.floats(0.05, 1.0), label="source_scale")
        residual_ref, jacobian_ref = _assemble(circuit, x, gmin, scale)
        plan = compiled_plan(circuit)
        plan.refresh()
        residual, jacobian = plan.assemble(x, gmin, scale)
        np.testing.assert_allclose(residual, residual_ref, rtol=ASSEMBLY_RTOL, atol=ASSEMBLY_ATOL)
        np.testing.assert_allclose(jacobian, jacobian_ref, rtol=ASSEMBLY_RTOL, atol=ASSEMBLY_ATOL)

    @settings(max_examples=40, deadline=None)
    @given(device_circuits(), st.data())
    def test_transient_companion_assembly_matches_reference(self, circuit, data):
        """Backward-Euler capacitor companions agree between the paths."""
        from repro.spice.compiled import compiled_plan
        from repro.spice.dc import _assemble, _assign_branch_indices

        _assign_branch_indices(circuit)
        n = circuit.unknown_count()
        x = self._random_state(data, n)
        x_prev = self._random_state(data, n)
        dt = data.draw(st.floats(1e-12, 1e-3), label="dt")
        residual_ref, jacobian_ref = _assemble(
            circuit, x, 1e-12, 1.0, dt=dt, x_prev=x_prev
        )
        plan = compiled_plan(circuit)
        plan.refresh()
        residual, jacobian = plan.assemble(x, 1e-12, 1.0, dt=dt, x_prev=x_prev)
        np.testing.assert_allclose(residual, residual_ref, rtol=ASSEMBLY_RTOL, atol=ASSEMBLY_ATOL)
        np.testing.assert_allclose(jacobian, jacobian_ref, rtol=ASSEMBLY_RTOL, atol=ASSEMBLY_ATOL)

    @settings(max_examples=20, deadline=None)
    @given(device_circuits())
    def test_dc_solutions_agree_to_nanovolts(self, circuit):
        from repro.spice import ConvergenceError

        try:
            reference = solve_dc(circuit, backend="reference")
        except ConvergenceError:
            assume(False)
        compiled = solve_dc(circuit, backend="compiled")
        n_nodes = circuit.node_count - 1
        diff = np.abs(reference.x[:n_nodes] - compiled.x[:n_nodes])
        assert diff.max() <= DC_BACKEND_AGREEMENT_V

    @settings(max_examples=20, deadline=None)
    @given(device_circuits(), st.data())
    def test_value_mutation_picked_up_by_refresh(self, circuit, data):
        """Mutating element values and calling refresh() must equal a fresh
        reference assembly - the contract RegulatorSession relies on."""
        from repro.spice.compiled import compiled_plan
        from repro.spice.dc import _assemble, _assign_branch_indices
        from repro.spice.elements import Resistor

        _assign_branch_indices(circuit)
        plan = compiled_plan(circuit)
        plan.refresh()
        factor = data.draw(st.floats(0.5, 2.0), label="resistance_factor")
        for element in circuit.elements:
            if isinstance(element, Resistor):
                element.resistance *= factor
        circuit.element("vs").voltage *= 0.75
        x = self._random_state(data, circuit.unknown_count())
        plan.refresh()
        residual, jacobian = plan.assemble(x, 1e-12, 1.0)
        residual_ref, jacobian_ref = _assemble(circuit, x, 1e-12, 1.0)
        np.testing.assert_allclose(residual, residual_ref, rtol=ASSEMBLY_RTOL, atol=ASSEMBLY_ATOL)
        np.testing.assert_allclose(jacobian, jacobian_ref, rtol=ASSEMBLY_RTOL, atol=ASSEMBLY_ATOL)
