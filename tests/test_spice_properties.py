"""Property-based checks of the MNA solver on randomised networks.

For arbitrary linear resistor networks with voltage/current sources, the
Newton solver must agree with a directly-assembled linear MNA solve - this
catches stamp sign errors, branch-index bookkeeping bugs and gmin leakage
far more broadly than hand-picked circuits.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.spice import Circuit, solve_dc


@st.composite
def linear_networks(draw):
    """A random connected resistor network with one vsource and isources."""
    n_nodes = draw(st.integers(2, 6))
    nodes = [f"n{i}" for i in range(n_nodes)]
    circuit = Circuit("random")
    # Spanning chain to ground keeps everything connected.
    chain = ["0"] + nodes
    resistors = []
    for i in range(len(chain) - 1):
        r = draw(st.floats(10.0, 1e5))
        resistors.append((chain[i], chain[i + 1], r))
    # Extra random edges.
    extra = draw(st.integers(0, 4))
    for k in range(extra):
        a = draw(st.sampled_from(chain))
        b = draw(st.sampled_from(chain))
        if a == b:
            continue
        r = draw(st.floats(10.0, 1e5))
        resistors.append((a, b, r))
    for idx, (a, b, r) in enumerate(resistors):
        circuit.resistor(f"r{idx}", a, b, r)
    v = draw(st.floats(-5.0, 5.0))
    circuit.vsource("vs", nodes[0], "0", v)
    n_isrc = draw(st.integers(0, 2))
    for k in range(n_isrc):
        node = draw(st.sampled_from(nodes))
        i = draw(st.floats(-1e-3, 1e-3))
        circuit.isource(f"is{k}", "0", node, i)
    return circuit


def _direct_solve(circuit: Circuit) -> np.ndarray:
    """Assemble and solve the linear MNA system with plain numpy."""
    from repro.spice.elements import CurrentSource, Resistor, VoltageSource

    n_nodes = circuit.node_count - 1
    offsets = circuit.branch_offsets()
    n = circuit.unknown_count()
    G = np.zeros((n, n))
    rhs = np.zeros(n)
    for el in circuit.elements:
        if isinstance(el, Resistor):
            g = 1.0 / el.resistance
            for a, b, sign in ((el.a, el.a, 1), (el.b, el.b, 1), (el.a, el.b, -1), (el.b, el.a, -1)):
                if a and b:
                    G[a - 1, b - 1] += sign * g
        elif isinstance(el, VoltageSource):
            k = offsets[el.name]
            if el.plus:
                G[el.plus - 1, k] += 1.0
                G[k, el.plus - 1] += 1.0
            if el.minus:
                G[el.minus - 1, k] -= 1.0
                G[k, el.minus - 1] -= 1.0
            rhs[k] = el.voltage
        elif isinstance(el, CurrentSource):
            if el.a:
                rhs[el.a - 1] -= el.current
            if el.b:
                rhs[el.b - 1] += el.current
    # Match the solver's gmin shunt for an apples-to-apples comparison.
    for row in range(n_nodes):
        G[row, row] += 1e-12
    return np.linalg.solve(G, rhs)


class TestLinearNetworkEquivalence:
    @settings(max_examples=50, deadline=None)
    @given(linear_networks())
    def test_newton_matches_direct_solve(self, circuit):
        expected = _direct_solve(circuit)
        solution = solve_dc(circuit)
        assert np.allclose(solution.x, expected, rtol=1e-7, atol=1e-9)

    @settings(max_examples=25, deadline=None)
    @given(linear_networks())
    def test_kcl_at_every_node(self, circuit):
        """Total source branch current balances through the network."""
        solution = solve_dc(circuit)
        # The residual at the solution must be numerically zero: re-assemble.
        from repro.spice.dc import _assemble

        residual, _ = _assemble(circuit, solution.x, 1e-12, 1.0)
        assert np.max(np.abs(residual)) < 1e-9

    @settings(max_examples=25, deadline=None)
    @given(linear_networks(), st.floats(0.1, 3.0))
    def test_linearity_under_source_scaling(self, circuit, scale):
        """Scaling the only vsource scales every node voltage linearly
        (when no current sources are present)."""
        from repro.spice.elements import CurrentSource

        if any(isinstance(el, CurrentSource) for el in circuit.elements):
            return
        base = solve_dc(circuit).x.copy()
        circuit.element("vs").voltage *= scale
        scaled = solve_dc(circuit).x
        assert np.allclose(scaled, base * scale, rtol=1e-6, atol=1e-9)
