"""Process corners and PVT grid definitions."""

import pytest

from repro.devices.corners import CORNERS, get_corner
from repro.devices.pvt import (
    NOMINAL_PVT,
    PVT,
    SUPPLY_VOLTAGES,
    TEMPERATURES,
    corner_temp_grid,
    paper_pvt_grid,
)


class TestCorners:
    def test_paper_corner_set(self):
        assert set(CORNERS) == {"slow", "typical", "fast", "fs", "sf"}

    def test_typical_is_neutral(self):
        tt = CORNERS["typical"]
        assert tt.vth_shift_n == 0.0 and tt.vth_shift_p == 0.0
        assert tt.kp_scale_n == 1.0 and tt.kp_scale_p == 1.0

    def test_slow_raises_vth_both(self):
        ss = CORNERS["slow"]
        assert ss.vth_shift_n > 0 and ss.vth_shift_p > 0
        assert ss.kp_scale_n < 1 and ss.kp_scale_p < 1

    def test_mixed_corners(self):
        fs = CORNERS["fs"]
        assert fs.vth_shift_n < 0 < fs.vth_shift_p
        sf = CORNERS["sf"]
        assert sf.vth_shift_p < 0 < sf.vth_shift_n

    def test_unknown_corner_message(self):
        with pytest.raises(KeyError, match="options"):
            get_corner("ttt")


class TestPVT:
    def test_paper_grid_is_45(self):
        grid = paper_pvt_grid()
        assert len(grid) == 45
        assert len(set(grid)) == 45

    def test_grid_contents(self):
        grid = paper_pvt_grid()
        assert PVT("fs", 1.0, 125.0) in grid
        assert PVT("slow", 1.2, -30.0) in grid

    def test_corner_temp_grid_is_15(self):
        assert len(corner_temp_grid()) == 15

    def test_label_format(self):
        assert PVT("fs", 1.0, 125.0).label() == "fs, 1.0V, 125C"
        assert PVT("sf", 1.2, -30.0).label() == "sf, 1.2V, -30C"

    def test_validation(self):
        with pytest.raises(KeyError):
            PVT("bogus", 1.0, 25.0)
        with pytest.raises(ValueError):
            PVT("typical", -1.0, 25.0)

    def test_nominal(self):
        assert NOMINAL_PVT.vdd == 1.1
        assert NOMINAL_PVT.corner == "typical"

    def test_paper_constants(self):
        assert SUPPLY_VOLTAGES == (1.0, 1.1, 1.2)
        assert TEMPERATURES == (-30.0, 25.0, 125.0)

    def test_corner_obj_access(self):
        assert PVT("fs", 1.0, 25.0).corner_obj is CORNERS["fs"]
