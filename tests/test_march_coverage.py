"""Fault-coverage evaluation across the March library."""

import pytest

from repro.march import (
    evaluate_coverage,
    march_c_minus,
    march_m_lz,
    march_ss,
    mats_plus,
)
from repro.sram import (
    CouplingFaultIdempotent,
    PeripheralPowerGatingFault,
    SRAMConfig,
    StuckAtFault,
    TransitionFault,
)

CFG = SRAMConfig(n_words=16, word_bits=4)


def _saf_instances():
    return [
        (f"SAF{v}@{a}.{b}", lambda a=a, b=b, v=v: StuckAtFault(a, b, v))
        for a in (0, 7, 15)
        for b in (0, 3)
        for v in (0, 1)
    ]


def _tf_instances():
    return [
        (f"TF{'r' if r else 'f'}@{a}", lambda a=a, r=r: TransitionFault(a, 1, rising=r))
        for a in (0, 8, 15)
        for r in (True, False)
    ]


class TestClassicCoverage:
    def test_all_tests_catch_stuck_at(self):
        for factory in (mats_plus, march_c_minus, march_ss, march_m_lz):
            report = evaluate_coverage(factory(), _saf_instances(), config=CFG)
            assert report.coverage == 1.0, report

    def test_mats_plus_misses_falling_transition(self):
        """Textbook gap: MATS+ never reads after its final w0."""
        report = evaluate_coverage(mats_plus(), _tf_instances(), config=CFG)
        assert all(label.startswith("TFf") for label in report.missed)
        assert report.coverage == pytest.approx(0.5)

    def test_march_c_minus_catches_all_transitions(self):
        report = evaluate_coverage(march_c_minus(), _tf_instances(), config=CFG)
        assert report.coverage == 1.0

    def test_coupling_coverage(self):
        instances = [
            ("CFid_up", lambda: CouplingFaultIdempotent(2, 0, 10, 2, True, 1)),
            ("CFid_down", lambda: CouplingFaultIdempotent(10, 2, 2, 0, False, 0)),
        ]
        report = evaluate_coverage(march_c_minus(), instances, config=CFG)
        assert report.coverage == 1.0

    def test_only_lz_family_catches_power_gating(self):
        instances = [("PPG", lambda: PeripheralPowerGatingFault(recovery_ops=3))]
        for factory, expected in (
            (mats_plus, 0.0),
            (march_c_minus, 0.0),
            (march_ss, 0.0),
            (march_m_lz, 1.0),
        ):
            report = evaluate_coverage(factory(), instances, config=CFG)
            assert report.coverage == expected, factory().name


class TestReport:
    def test_counts_and_str(self):
        report = evaluate_coverage(mats_plus(), _saf_instances(), config=CFG)
        assert report.total == len(_saf_instances())
        assert "detected" in str(report)

    def test_empty_instances(self):
        report = evaluate_coverage(mats_plus(), [], config=CFG)
        assert report.coverage == 1.0
