"""The sparse backend against the reference oracle, plus its contracts.

Property half: hypothesis-generated device netlists (same generator family
as ``test_spice_properties.py``) must produce the same DC and
transient-companion assemblies as the per-element ``Element.stamp``
reference to ulp-level rounding, and the same DC solutions within the
shared ``DC_BACKEND_AGREEMENT_V`` budget - with the dense-delegation
threshold forced to zero so the real CSR + SuperLU path is what runs.

Contract half: the symbolic-reuse guarantees the module docstring of
:mod:`repro.spice.sparse` promises - one pattern build per plan lifetime
however many assemblies follow, ``refresh()`` picking up value mutations
without a pattern rebuild, plan-cache invalidation on topology change,
small-netlist delegation - and the import-time numba/numpy kernel
selection policy of :mod:`repro.spice.jit`.
"""

import numpy as np
import pytest
from hypothesis import assume, given, settings, strategies as st

from repro.spice import (
    Circuit,
    ConvergenceError,
    solve_dc,
    solve_dc_batch,
    sparse_plan,
    sparse_threshold,
)
from repro.spice.sparse import DEFAULT_MIN_UNKNOWNS, SparseCircuit
from repro.verify.tolerances import (
    ASSEMBLY_ATOL,
    ASSEMBLY_RTOL,
    DC_BACKEND_AGREEMENT_V,
    SWEEP_BATCH_AGREEMENT_V,
)


@st.composite
def device_circuits(draw):
    """Random mixed netlists (resistor chain + MOSFETs + caps + sources).

    Mirrors the generator in ``test_spice_properties.py``: the spanning
    chain keeps the DC operating point well-posed wherever the devices
    land, and non-unit MOSFET multipliers exercise the plan's folded-i0
    path.
    """
    from repro.devices import CORNERS, MosfetModel, nmos_params, pmos_params

    n_nodes = draw(st.integers(2, 6))
    nodes = [f"n{i}" for i in range(n_nodes)]
    chain = ["0"] + nodes
    circuit = Circuit("random-sparse")
    for i in range(len(chain) - 1):
        circuit.resistor(f"r{i}", chain[i], chain[i + 1], draw(st.floats(1e3, 1e7)))
    circuit.vsource("vs", nodes[0], "0", draw(st.floats(0.2, 1.2)))
    corner = CORNERS[draw(st.sampled_from(["typical", "fast", "slow", "fs", "sf"]))]
    temp_c = draw(st.sampled_from([-40.0, 25.0, 125.0]))
    for k in range(draw(st.integers(1, 4))):
        d = draw(st.sampled_from(chain))
        g = draw(st.sampled_from(chain))
        s = draw(st.sampled_from(chain))
        if draw(st.booleans()):
            params = nmos_params(f"m{k}", 120e-9)
        else:
            params = pmos_params(f"m{k}", 240e-9)
        circuit.mosfet(
            f"m{k}", d, g, s, MosfetModel(params, corner, temp_c),
            multiplier=draw(st.floats(0.5, 4.0)),
        )
    for k in range(draw(st.integers(0, 3))):
        a = draw(st.sampled_from(chain))
        b = draw(st.sampled_from(chain))
        if a != b:
            circuit.capacitor(f"c{k}", a, b, draw(st.floats(1e-15, 1e-9)))
    for k in range(draw(st.integers(0, 2))):
        node = draw(st.sampled_from(nodes))
        circuit.isource(f"i{k}", "0", node, draw(st.floats(-1e-4, 1e-4)))
    return circuit


def _random_state(data, n):
    values = data.draw(
        st.lists(st.floats(-1.5, 1.5), min_size=n, max_size=n),
        label="state",
    )
    return np.asarray(values)


class TestSparseVsReference:
    """CSR assembly and SuperLU solves against the Element.stamp oracle."""

    @settings(max_examples=40, deadline=None)
    @given(device_circuits(), st.data())
    def test_dc_assembly_matches_reference(self, circuit, data):
        from repro.spice.dc import _assemble, _assign_branch_indices

        _assign_branch_indices(circuit)
        x = _random_state(data, circuit.unknown_count())
        gmin = data.draw(st.sampled_from([0.0, 1e-12, 1e-6]), label="gmin")
        scale = data.draw(st.floats(0.05, 1.0), label="source_scale")
        residual_ref, jacobian_ref = _assemble(circuit, x, gmin, scale)
        with sparse_threshold(0):
            plan = sparse_plan(circuit)
            assert not plan.delegated
            plan.refresh()
            residual, jacobian = plan.assemble(x, gmin, scale)
        np.testing.assert_allclose(
            residual, residual_ref, rtol=ASSEMBLY_RTOL, atol=ASSEMBLY_ATOL
        )
        np.testing.assert_allclose(
            jacobian.toarray(), jacobian_ref,
            rtol=ASSEMBLY_RTOL, atol=ASSEMBLY_ATOL,
        )

    @settings(max_examples=40, deadline=None)
    @given(device_circuits(), st.data())
    def test_transient_companion_assembly_matches_reference(self, circuit, data):
        """Backward-Euler capacitor companions agree through the CSR path."""
        from repro.spice.dc import _assemble, _assign_branch_indices

        _assign_branch_indices(circuit)
        n = circuit.unknown_count()
        x = _random_state(data, n)
        x_prev = _random_state(data, n)
        dt = data.draw(st.floats(1e-12, 1e-3), label="dt")
        residual_ref, jacobian_ref = _assemble(
            circuit, x, 1e-12, 1.0, dt=dt, x_prev=x_prev
        )
        with sparse_threshold(0):
            plan = sparse_plan(circuit)
            plan.refresh()
            residual, jacobian = plan.assemble(
                x, 1e-12, 1.0, dt=dt, x_prev=x_prev
            )
        np.testing.assert_allclose(
            residual, residual_ref, rtol=ASSEMBLY_RTOL, atol=ASSEMBLY_ATOL
        )
        np.testing.assert_allclose(
            jacobian.toarray(), jacobian_ref,
            rtol=ASSEMBLY_RTOL, atol=ASSEMBLY_ATOL,
        )

    @settings(max_examples=20, deadline=None)
    @given(device_circuits())
    def test_dc_solutions_agree_to_nanovolts(self, circuit):
        try:
            reference = solve_dc(circuit, backend="reference")
        except ConvergenceError:
            assume(False)
        with sparse_threshold(0):
            sparse = solve_dc(circuit, backend="sparse")
        n_nodes = circuit.node_count - 1
        diff = np.abs(reference.x[:n_nodes] - sparse.x[:n_nodes])
        assert diff.max() <= DC_BACKEND_AGREEMENT_V

    @settings(max_examples=10, deadline=None)
    @given(device_circuits())
    def test_batch_sweep_agrees_with_sequential_reference(self, circuit):
        from repro.spice.dc import dc_sweep

        v0 = circuit.element("vs").voltage
        values = list(np.linspace(0.8 * v0, 1.2 * v0, 5))
        try:
            sequential = dc_sweep(circuit, "vs", values, backend="reference")
        except ConvergenceError:
            assume(False)
        with sparse_threshold(0):
            batch = solve_dc_batch(circuit, "vs", values, backend="sparse")
        n_nodes = circuit.node_count - 1
        for b, s in zip(batch, sequential):
            diff = np.abs(b.x[:n_nodes] - s.x[:n_nodes])
            assert diff.max() <= SWEEP_BATCH_AGREEMENT_V


def _rc_mos_circuit(n_stages=3):
    """A small deterministic netlist with every element family present."""
    from repro.devices import MosfetModel, nmos_params

    circuit = Circuit("contract")
    circuit.vsource("vdd", "vdd", "0", 1.0)
    prev = "vdd"
    for k in range(n_stages):
        node = f"n{k}"
        circuit.resistor(f"r{k}", prev, node, 1e4)
        circuit.mosfet(
            f"m{k}", node, node, "0",
            MosfetModel(nmos_params(f"m{k}", 120e-9)),
        )
        circuit.capacitor(f"c{k}", node, "0", 1e-15)
        prev = node
    return circuit


def _generic_load_circuit():
    """A netlist with a table-driven generic element (the regulator's
    ``ArrayLoad``), which only the reference stamp understands."""
    from repro.regulator.load import ArrayLoad, leakage_table

    circuit = Circuit("generic-load")
    circuit.vsource("vdd", "vdd", "0", 1.0)
    circuit.resistor("rload", "vdd", "out", 1e3)
    circuit.add(
        ArrayLoad(
            "array", circuit.node("out"), leakage_table("typical", 25.0),
            n_cells=262144,
        )
    )
    return circuit


class TestGenericElements:
    """Reference-stamp elements assemble into the pattern, not around it."""

    def test_generic_assembly_matches_reference(self):
        from repro.spice.dc import _assemble, _assign_branch_indices

        circuit = _generic_load_circuit()
        _assign_branch_indices(circuit)
        x = np.linspace(0.2, 1.0, circuit.unknown_count())
        residual_ref, jacobian_ref = _assemble(circuit, x, 1e-12, 1.0)
        with sparse_threshold(0):
            plan = sparse_plan(circuit)
            assert not plan.delegated
            residual, jacobian = plan.assemble(x, 1e-12, 1.0)
        np.testing.assert_allclose(
            residual, residual_ref, rtol=ASSEMBLY_RTOL, atol=ASSEMBLY_ATOL
        )
        np.testing.assert_allclose(
            jacobian.toarray(), jacobian_ref,
            rtol=ASSEMBLY_RTOL, atol=ASSEMBLY_ATOL,
        )

    def test_regulator_netlist_takes_the_csr_path(self):
        """The full regulator (ArrayLoad included) solves through CSR to
        the same operating point as the compiled backend."""
        from repro.devices.pvt import PVT
        from repro.regulator.design import VrefSelect
        from repro.regulator.netlist import build_regulator

        pvt = PVT("typical", 1.1, 25.0)
        circuit, _ = build_regulator(pvt, VrefSelect.VREF70)
        compiled = solve_dc(circuit, backend="compiled")
        with sparse_threshold(0):
            plan = sparse_plan(circuit)
            assert not plan.delegated
            sparse = solve_dc(circuit, backend="sparse")
        n_nodes = circuit.node_count - 1
        diff = np.abs(compiled.x[:n_nodes] - sparse.x[:n_nodes])
        assert diff.max() <= DC_BACKEND_AGREEMENT_V

    def test_batch_sweep_with_generic_element(self):
        from repro.spice.dc import dc_sweep

        values = [0.8, 0.9, 1.0, 1.1]
        sequential = dc_sweep(
            _generic_load_circuit(), "vdd", values, backend="reference"
        )
        with sparse_threshold(0):
            batch = solve_dc_batch(
                _generic_load_circuit(), "vdd", values, backend="sparse"
            )
        for b, s in zip(batch, sequential):
            diff = np.abs(b.x - s.x)
            assert diff.max() <= SWEEP_BATCH_AGREEMENT_V

    def test_footprint_violation_raises_a_clear_error(self):
        """A generic stamp whose Jacobian footprint depends on the iterate
        breaks the pattern contract and must say so, not corrupt data."""
        from repro.spice.elements import Element

        class WanderingStamp(Element):
            def stamp(self, ctx):
                # Couples node c to itself at 0 V, but to the (otherwise
                # uncoupled) node a once the voltage rises - an entry the
                # discovery pass never saw and no other element owns.
                other = 1 if ctx.v(3) > 0.5 else 3
                ctx.add_current(3, 1e-6, {other: 1e-6})

        circuit = Circuit("wandering")
        circuit.vsource("v", "a", "0", 1.0)
        circuit.resistor("r1", "a", "b", 1e3)
        circuit.resistor("r2", "b", "c", 1e3)
        circuit.resistor("r3", "c", "0", 1e3)
        circuit.add(WanderingStamp("w"))
        with sparse_threshold(0):
            plan = sparse_plan(circuit)
            x = np.full(circuit.unknown_count(), 0.9)
            with pytest.raises(RuntimeError, match="footprint"):
                plan.assemble(x, 1e-12, 1.0)


class TestSymbolicReuse:
    """The pattern cache is the symbolic step; build once, assemble many."""

    def test_pattern_built_once_across_newton_iterations(self):
        with sparse_threshold(0):
            circuit = _rc_mos_circuit()
            solve_dc(circuit, backend="sparse")
            plan = sparse_plan(circuit)
            assert plan.pattern_builds == 1
            assert plan.assemblies > 1  # Newton iterated; pattern did not rebuild

    def test_plan_cached_across_solves_and_sweeps(self):
        with sparse_threshold(0):
            circuit = _rc_mos_circuit()
            solve_dc(circuit, backend="sparse")
            first = sparse_plan(circuit)
            solve_dc(circuit, backend="sparse")
            solve_dc_batch(
                circuit, "vdd", [0.8, 0.9, 1.0], backend="sparse"
            )
            assert sparse_plan(circuit) is first
            assert first.pattern_builds == 1

    def test_refresh_picks_up_value_mutation_without_rebuild(self):
        from repro.spice.dc import _assemble, _assign_branch_indices

        with sparse_threshold(0):
            circuit = _rc_mos_circuit()
            _assign_branch_indices(circuit)
            plan = sparse_plan(circuit)
            x = np.linspace(0.1, 0.9, circuit.unknown_count())
            plan.refresh()
            plan.assemble(x, 1e-12, 1.0)
            circuit.element("r0").resistance *= 3.0
            circuit.element("vdd").voltage = 0.7
            plan.refresh()
            residual, jacobian = plan.assemble(x, 1e-12, 1.0)
            residual_ref, jacobian_ref = _assemble(circuit, x, 1e-12, 1.0)
            np.testing.assert_allclose(
                residual, residual_ref, rtol=ASSEMBLY_RTOL, atol=ASSEMBLY_ATOL
            )
            np.testing.assert_allclose(
                jacobian.toarray(), jacobian_ref,
                rtol=ASSEMBLY_RTOL, atol=ASSEMBLY_ATOL,
            )
            assert plan.pattern_builds == 1

    def test_topology_change_invalidates_the_cached_plan(self):
        with sparse_threshold(0):
            circuit = _rc_mos_circuit()
            first = sparse_plan(circuit)
            circuit.resistor("extra", "n0", "0", 5e4)
            second = sparse_plan(circuit)
            assert second is not first
            assert second.nnz >= first.nnz
            # And the new plan solves the new topology correctly.
            sparse = solve_dc(circuit, backend="sparse")
        reference = solve_dc(circuit, backend="reference")
        n_nodes = circuit.node_count - 1
        diff = np.abs(reference.x[:n_nodes] - sparse.x[:n_nodes])
        assert diff.max() <= DC_BACKEND_AGREEMENT_V


class TestDelegation:
    """Small netlists ride the dense plan; the threshold is overridable."""

    def test_small_netlist_delegates_by_default(self):
        circuit = _rc_mos_circuit()
        plan = sparse_plan(circuit)
        assert circuit.unknown_count() < DEFAULT_MIN_UNKNOWNS
        assert plan.delegated
        jacobian = plan.assemble(
            np.zeros(circuit.unknown_count()), 1e-12, 1.0
        )[1]
        assert isinstance(jacobian, np.ndarray)  # dense, not CSR

    def test_threshold_context_forces_csr(self):
        circuit = _rc_mos_circuit()
        with sparse_threshold(0):
            plan = sparse_plan(circuit)
            assert not plan.delegated
            jacobian = plan.assemble(
                np.zeros(circuit.unknown_count()), 1e-12, 1.0
            )[1]
            assert hasattr(jacobian, "toarray")  # CSR

    def test_threshold_change_is_a_cache_miss(self):
        circuit = _rc_mos_circuit()
        delegated = sparse_plan(circuit)
        with sparse_threshold(0):
            forced = sparse_plan(circuit)
        assert forced is not delegated
        assert delegated.delegated and not forced.delegated

    def test_env_var_threshold(self, monkeypatch):
        monkeypatch.setenv("REPRO_SPARSE_MIN_UNKNOWNS", "1")
        circuit = _rc_mos_circuit()
        plan = SparseCircuit(circuit)
        assert not plan.delegated


class TestJitSelection:
    """Import-time numba/numpy kernel selection and its escape hatch."""

    def test_kernel_name_matches_availability(self):
        from repro.spice import jit

        assert jit.kernel_name() in ("numba", "numpy")
        assert (jit.kernel_name() == "numba") is jit.HAVE_NUMBA

    def test_numpy_fallback_is_the_plan_method(self):
        """Without numba the evaluator IS the compiled plan's numpy path -
        zero indirection, nothing new to diverge."""
        from repro.spice import jit
        from repro.spice.compiled import compiled_plan
        from repro.spice.dc import _assign_branch_indices

        if jit.HAVE_NUMBA:
            pytest.skip("numba present; fallback identity not in play")
        circuit = _rc_mos_circuit()
        _assign_branch_indices(circuit)
        plan = compiled_plan(circuit)
        assert jit.make_ekv_evaluator(plan) == plan._mos_eval_into

    def test_jit_env_mask_values(self):
        from repro.spice.jit import _jit_disabled

        for value, expected in (
            ("0", True), ("off", True), ("no", True), ("false", True),
            ("OFF", True), ("1", False), ("", False), ("yes", False),
        ):
            import os
            old = os.environ.get("REPRO_SPICE_JIT")
            try:
                os.environ["REPRO_SPICE_JIT"] = value
                assert _jit_disabled() is expected, value
            finally:
                if old is None:
                    os.environ.pop("REPRO_SPICE_JIT", None)
                else:
                    os.environ["REPRO_SPICE_JIT"] = old

    def test_fingerprint_names_the_kernel(self):
        """Campaign caches must never mix numba and numpy results."""
        from repro.campaign.spec import SweepSpec, TaskPoint
        from repro.spice.jit import kernel_name

        spec = SweepSpec.build(
            "jit-fp", [TaskPoint("svnm", {"vdd": 0.7})], seed=1
        )
        assert kernel_name() in ("numba", "numpy")
        assert spec.fingerprint()  # digest builds with the kernel folded in
