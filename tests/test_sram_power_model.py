"""Static power model (Section IV.B claims)."""

import pytest

from repro.devices.pvt import PVT
from repro.regulator import VrefSelect
from repro.sram.power_model import (
    PERIPHERY_LEAK_RATIO,
    act_idle_power,
    ds_power,
    ds_savings,
    static_power,
    worst_case_ds_power,
)

HOT = PVT("typical", 1.1, 125.0)
ROOM = PVT("typical", 1.1, 25.0)


class TestActIdle:
    def test_breakdown_sums(self):
        report = act_idle_power(HOT)
        assert report.power_w == pytest.approx(sum(report.breakdown.values()))

    def test_periphery_ratio(self):
        report = act_idle_power(HOT)
        assert report.breakdown["periphery"] == pytest.approx(
            PERIPHERY_LEAK_RATIO * report.breakdown["array"]
        )

    def test_grows_with_temperature(self):
        assert act_idle_power(HOT).power_w > 20 * act_idle_power(ROOM).power_w


class TestDeepSleep:
    def test_ds_saves_power_when_leakage_dominates(self):
        """At high temperature deep sleep must beat ACT idle."""
        assert ds_savings(HOT, VrefSelect.VREF70) > 0.2

    def test_defective_savings_is_periphery_share(self):
        """Vreg = VDD: only the gated periphery is saved (paper: >30%)."""
        saving = ds_savings(HOT, defective=True)
        expected = PERIPHERY_LEAK_RATIO / (1.0 + PERIPHERY_LEAK_RATIO)
        assert saving == pytest.approx(expected, abs=1e-9)
        assert saving > 0.30

    def test_defective_worse_than_healthy_at_high_temp(self):
        healthy = ds_power(HOT, VrefSelect.VREF70).power_w
        defective = worst_case_ds_power(HOT).power_w
        assert defective > healthy

    def test_ds_report_label_mentions_defect(self):
        from repro.regulator import DEFECTS

        report = ds_power(HOT, VrefSelect.VREF70, DEFECTS[6], 1e6)
        assert "Df6" in report.label


class TestDispatcher:
    def test_modes(self):
        assert static_power("act", HOT).power_w > 0
        assert static_power("ds", HOT).power_w > 0
        assert static_power("ds_defective", HOT).power_w > 0
        assert static_power("po", HOT).power_w == 0.0

    def test_unknown_mode(self):
        with pytest.raises(ValueError):
            static_power("standby", HOT)

    def test_report_str(self):
        text = str(act_idle_power(ROOM))
        assert "uW" in text and "array" in text
