"""Reduced-scale run of the full Section III-V pipeline."""

import pytest

from repro.core.methodology import MethodologyReport, RetentionTestMethodology
from repro.devices.pvt import PVT


@pytest.fixture(scope="module")
def report() -> MethodologyReport:
    """One reduced pipeline run shared by all assertions below.

    Two divider defects plus one output-stage defect are enough to exercise
    every step, including the optimiser's tap-repair logic.
    """
    methodology = RetentionTestMethodology(
        defect_ids=(1, 3, 16),
        pvt_grid=[PVT("fs", 1.1, 125.0)],
    )
    return methodology.run()


class TestPipeline:
    def test_sensitivity_covers_all_transistors(self, report):
        assert set(report.transistor_sensitivity) == {
            "mpcc1", "mncc1", "mpcc2", "mncc2", "mncc3", "mncc4"
        }

    def test_inverter_devices_dominate(self, report):
        s = report.transistor_sensitivity
        assert max(s["mpcc1"], s["mncc1"], s["mpcc2"], s["mncc2"]) > max(
            s["mncc3"], s["mncc4"]
        )

    def test_pass_gates_not_negligible(self, report):
        s = report.transistor_sensitivity
        assert min(s["mncc3"], s["mncc4"]) > 0.005

    def test_worst_case_drv(self, report):
        assert 0.6 < report.drv_worst < 0.75
        assert report.drv_worst_pvt.corner == "fs"

    def test_matrix_covers_requested_defects(self, report):
        assert report.matrix.defect_ids == [1, 3, 16]
        assert len(report.matrix.configs) == 12

    def test_flow_is_three_iterations(self, report):
        assert len(report.flow.iterations) == 3
        assert report.flow.time_reduction() == pytest.approx(0.75)

    def test_flow_covers_all_detectable_defects(self, report):
        detectable = {
            d for d in report.matrix.defect_ids if report.matrix.detectable(d)
        }
        assert detectable <= report.flow.covered_defects()

    def test_summary_text(self, report):
        text = report.summary()
        assert "Worst-case DRV_DS" in text
        assert "Optimised test flow" in text
