"""The repro.verify conformance layer: tolerances, goldens, fuzz, CLI.

The golden workflow is exercised end to end on the ``march`` artifact
(sub-second to build) at the ``tiny`` tier against a temporary goldens
directory - including the negative path: a perturbed golden must fail the
run with the offending table cell named in the diff, through both the
library and the ``repro verify`` subprocess (exit-code contract).
"""

import json
import math
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.verify import fuzz as fuzz_mod
from repro.verify.artifacts import ARTIFACTS, artifact_names, scope_for
from repro.verify.compare import (
    TolerancePolicy,
    compare_payloads,
    render_mismatches,
)
from repro.verify.fuzz import (
    backend_pairs,
    build_circuit,
    generate_spec,
    load_repro,
    run_case,
    run_fuzz,
    shrink_spec,
)
from repro.verify.goldens import (
    GOLDEN_SCHEMA,
    golden_path,
    load_golden,
    write_golden,
)
from repro.verify.runner import (
    REPORT_SCHEMA,
    run_verify,
    write_verify_report,
)
from repro.verify.tolerances import EXACT, Tolerance

REPO_ROOT = Path(__file__).resolve().parents[1]


class TestTolerance:
    def test_exact_scalars(self):
        assert EXACT.check(3, 3)
        assert EXACT.check("fs, 1.0V, 125C", "fs, 1.0V, 125C")
        assert not EXACT.check(0.75, 0.7500001)

    def test_abs(self):
        tol = Tolerance.abs(1e-3)
        assert tol.check(0.5, 0.5009)
        assert not tol.check(0.5, 0.502)

    def test_rel_with_floor(self):
        tol = Tolerance.rel(0.01, floor=1e-6)
        assert tol.check(1000.0, 1009.0)
        assert not tol.check(1000.0, 1011.0)
        # Near zero the floor takes over (a pure rel bound would be 0).
        assert tol.check(0.0, 5e-7)
        assert not tol.check(0.0, 5e-6)

    def test_ulp(self):
        tol = Tolerance.ulp(4)
        assert tol.check(1.0, math.nextafter(1.0, 2.0))
        assert not tol.check(1.0, 1.0 + 100 * math.ulp(1.0))

    def test_non_numeric_compare_equal_under_any_kind(self):
        tol = Tolerance.rel(0.5)
        assert tol.check("VREF74", "VREF74")
        assert not tol.check("VREF74", "VREF70")
        assert not tol.check(True, False)

    def test_none_vs_number_always_fails(self):
        assert not Tolerance.abs(1e9).check(None, 0.0)
        assert not Tolerance.abs(1e9).check(0.0, None)
        assert EXACT.check(None, None)

    def test_nan_matches_only_nan(self):
        tol = Tolerance.abs(1.0)
        assert tol.check(float("nan"), float("nan"))
        assert not tol.check(float("nan"), 0.5)

    def test_describe_and_to_dict(self):
        assert EXACT.describe() == "exact"
        assert "abs<=0.0005" in Tolerance.abs(5e-4).describe()
        assert Tolerance.rel(0.01, 1e-6).to_dict() == {
            "kind": "rel", "value": 0.01, "floor": 1e-6,
        }
        assert EXACT.to_dict() == {"kind": "exact"}

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown tolerance kind"):
            Tolerance("bogus", 1.0).check(1.0, 2.0)


class TestComparePayloads:
    POLICY = TolerancePolicy([
        ("rows/*/drv", Tolerance.abs(1e-3)),
        ("rows/*/*", Tolerance.rel(0.5)),
    ])

    def test_identical_trees(self):
        payload = {"rows": {"CS1": {"drv": 0.4, "n": 1}}, "label": "x"}
        mismatches, compared = compare_payloads(payload, payload, self.POLICY)
        assert mismatches == []
        assert compared == 3

    def test_drift_within_tolerance_passes(self):
        golden = {"rows": {"CS1": {"drv": 0.4}}}
        actual = {"rows": {"CS1": {"drv": 0.4004}}}
        mismatches, _ = compare_payloads(golden, actual, self.POLICY)
        assert mismatches == []

    def test_drift_beyond_tolerance_names_the_path(self):
        golden = {"rows": {"CS1": {"drv": 0.4}}}
        actual = {"rows": {"CS1": {"drv": 0.402}}}
        mismatches, _ = compare_payloads(golden, actual, self.POLICY)
        assert [m.path for m in mismatches] == ["rows/CS1/drv"]
        assert "rows/CS1/drv" in mismatches[0].render()

    def test_first_matching_rule_wins(self):
        # 'rows/*/drv' (abs 1e-3) shadows the looser 'rows/*/*' rule.
        assert self.POLICY.tolerance_for("rows/CS1/drv").kind == "abs"
        assert self.POLICY.tolerance_for("rows/CS1/other").kind == "rel"

    def test_unclaimed_paths_default_to_exact(self):
        golden = {"meta": {"pvt": "fs, 1.0V, 125C"}}
        actual = {"meta": {"pvt": "sf, 1.0V, 125C"}}
        mismatches, _ = compare_payloads(golden, actual, self.POLICY)
        assert [m.path for m in mismatches] == ["meta/pvt"]
        assert mismatches[0].tolerance.kind == "exact"

    def test_missing_and_unexpected_keys(self):
        golden = {"a": 1, "b": 2}
        actual = {"a": 1, "c": 3}
        mismatches, _ = compare_payloads(golden, actual, TolerancePolicy())
        details = {m.path: m.detail for m in mismatches}
        assert details == {"b": "missing in actual", "c": "unexpected in actual"}

    def test_list_length_and_structure_mismatch(self):
        mismatches, _ = compare_payloads(
            {"xs": [1, 2, 3]}, {"xs": [1, 2]}, TolerancePolicy()
        )
        assert mismatches[0].detail == "length 3 vs 2"
        mismatches, _ = compare_payloads(
            {"xs": [1]}, {"xs": {"0": 1}}, TolerancePolicy()
        )
        assert mismatches[0].detail == "structure differs"

    def test_render_limit(self):
        mismatches, _ = compare_payloads(
            {str(i): i for i in range(30)},
            {str(i): i + 1 for i in range(30)},
            TolerancePolicy(),
        )
        text = render_mismatches("demo", mismatches, limit=5)
        assert "demo: 30 mismatch(es)" in text
        assert "... and 25 more" in text


class TestGoldens:
    def test_round_trip(self, tmp_path):
        scope = scope_for("tiny")
        payload = {"structure": {"March m-LZ": {"length_n32": 164}}}
        path = write_golden(tmp_path, scope, "march", payload)
        assert path == golden_path(tmp_path, "tiny", "march")
        document = load_golden(tmp_path, "tiny", "march")
        assert document["schema"] == GOLDEN_SCHEMA
        assert document["payload"] == payload
        assert document["scope"] == scope.params()
        assert document["tolerances"] == ARTIFACTS["march"].policy.to_dict()

    def test_absent_returns_none(self, tmp_path):
        assert load_golden(tmp_path, "tiny", "march") is None

    def test_corrupt_json_raises(self, tmp_path):
        path = golden_path(tmp_path, "tiny", "march")
        path.parent.mkdir(parents=True)
        path.write_text("{not json", encoding="utf-8")
        with pytest.raises(ValueError, match="not valid JSON"):
            load_golden(tmp_path, "tiny", "march")

    def test_wrong_schema_raises(self, tmp_path):
        path = golden_path(tmp_path, "tiny", "march")
        path.parent.mkdir(parents=True)
        path.write_text(json.dumps({"schema": "bogus/9"}), encoding="utf-8")
        with pytest.raises(ValueError, match="unsupported schema"):
            load_golden(tmp_path, "tiny", "march")

    def test_misfiled_golden_raises(self, tmp_path):
        """A golden copied under another artifact's name must not verify."""
        scope = scope_for("tiny")
        source = write_golden(tmp_path, scope, "march", {"x": 1})
        target = golden_path(tmp_path, "tiny", "table1")
        target.write_text(source.read_text())
        with pytest.raises(ValueError, match="claims artifact"):
            load_golden(tmp_path, "tiny", "table1")


def _spec_with(min_mosfets, min_caps):
    for seed in range(200):
        spec = generate_spec(seed)
        kinds = [el["kind"] for el in spec["elements"]]
        if (
            kinds.count("mosfet") >= min_mosfets
            and kinds.count("capacitor") >= min_caps
        ):
            return spec
    raise AssertionError("no suitable spec in 200 seeds")


class TestFuzz:
    def test_spec_generation_is_deterministic_and_jsonable(self):
        a, b = generate_spec(1234), generate_spec(1234)
        assert a == b
        assert json.loads(json.dumps(a)) == a
        assert a != generate_spec(1235)

    def test_specs_are_topology_valid(self):
        for seed in range(20):
            circuit = build_circuit(generate_spec(seed))
            assert circuit.node_count >= 3
            status, check, detail, pair = run_case(generate_spec(seed))
            assert status in ("ok", "skip"), (
                f"seed {seed}: {check} {pair}: {detail}"
            )

    def test_backend_pairs_cover_the_registry_matrix(self):
        """Every registered backend is paired against every more-trusted
        one - the three-way matrix the sparse backend lands through."""
        pairs = backend_pairs()
        assert ("reference", "compiled") in pairs
        assert ("reference", "sparse") in pairs
        assert ("compiled", "sparse") in pairs
        from repro.spice import BACKENDS

        expected = len(BACKENDS) * (len(BACKENDS) - 1) // 2
        assert len(pairs) == expected
        for oracle, candidate in pairs:
            assert oracle in BACKENDS and candidate in BACKENDS
            assert oracle != candidate

    def test_run_fuzz_agrees_and_is_deterministic(self):
        first = run_fuzz(15, seed=7)
        second = run_fuzz(15, seed=7)
        assert first.ok and first.cases == 15
        assert first.to_dict() == second.to_dict()
        assert f"{first.passed}/15 agreed" in first.render()

    def test_shrinker_reaches_one_minimal(self, monkeypatch):
        """With a synthetic 'fails iff a MOSFET is present' check, the
        shrinker must strip every cap/isource and all but one MOSFET."""
        def fails_on_mosfet(spec, oracle, candidate):
            kinds = [el["kind"] for el in spec["elements"]]
            if "mosfet" in kinds:
                return "fail", f"{kinds.count('mosfet')} mosfet(s)"
            return "ok", ""

        monkeypatch.setitem(
            fuzz_mod._CHECK_FUNCS, "synthetic", fails_on_mosfet
        )
        spec = _spec_with(min_mosfets=2, min_caps=1)
        shrunk = shrink_spec(spec, "synthetic", pair=("reference", "compiled"))
        kinds = [el["kind"] for el in shrunk["elements"]]
        assert kinds.count("mosfet") == 1
        assert kinds.count("capacitor") == 0
        assert kinds.count("isource") == 0
        assert len(shrunk["elements"]) < len(spec["elements"])
        status, check, _, _ = run_case(shrunk, checks=("synthetic",))
        assert (status, check) == ("fail", "synthetic")

    def test_failures_are_dumped_and_reloadable(self, tmp_path, monkeypatch):
        monkeypatch.setitem(
            fuzz_mod._CHECK_FUNCS, "synthetic",
            lambda spec, oracle, candidate: ("fail", "always"),
        )
        report = run_fuzz(
            2, seed=3, checks=("synthetic",), repro_dir=tmp_path
        )
        assert not report.ok
        assert len(report.failures) == 2
        for failure in report.failures:
            assert failure.repro_path is not None
            # The dump is self-describing: both backend names recorded in
            # the payload and in the filename.
            assert failure.oracle and failure.candidate
            assert f"{failure.oracle}-vs-{failure.candidate}" in failure.repro_path
            document = json.loads(Path(failure.repro_path).read_text())
            assert document["oracle"] == failure.oracle
            assert document["candidate"] == failure.candidate
            reloaded = load_repro(failure.repro_path)
            assert reloaded == failure.shrunk
        assert "disagreement" in report.render()

    def test_load_repro_accepts_bare_spec(self, tmp_path):
        spec = generate_spec(5)
        path = tmp_path / "bare.json"
        path.write_text(json.dumps(spec), encoding="utf-8")
        assert load_repro(path) == spec


class TestRunVerify:
    """Library-level golden workflow on the march artifact, tiny tier."""

    def test_missing_golden_fails_the_run(self, tmp_path):
        report = run_verify(
            tier="tiny", goldens_dir=tmp_path, artifacts=["march"]
        )
        assert not report.ok
        assert report.results[0].status == "missing"
        assert "MISSING march" in report.render()

    def test_regen_then_verify_passes(self, tmp_path):
        regen = run_verify(
            tier="tiny", goldens_dir=tmp_path, artifacts=["march"],
            regen=True,
        )
        assert regen.ok and regen.results[0].status == "regenerated"
        assert golden_path(tmp_path, "tiny", "march").exists()
        report = run_verify(
            tier="tiny", goldens_dir=tmp_path, artifacts=["march"]
        )
        assert report.ok
        assert report.results[0].status == "pass"
        assert report.results[0].fields_compared > 20
        assert "PASS march" in report.render()

    def test_perturbed_golden_fails_and_names_the_cell(self, tmp_path):
        """Satellite: one flipped value -> non-zero verdict, path named."""
        run_verify(
            tier="tiny", goldens_dir=tmp_path, artifacts=["march"],
            regen=True,
        )
        path = golden_path(tmp_path, "tiny", "march")
        document = json.loads(path.read_text())
        assert document["payload"]["coverage"]["March m-LZ"]["DRF_DS"] == 1.0
        document["payload"]["coverage"]["March m-LZ"]["DRF_DS"] = 0.5
        path.write_text(json.dumps(document), encoding="utf-8")
        report = run_verify(
            tier="tiny", goldens_dir=tmp_path, artifacts=["march"]
        )
        assert not report.ok
        result = report.results[0]
        assert result.status == "fail"
        assert [m.path for m in result.mismatches] == [
            "coverage/March m-LZ/DRF_DS"
        ]
        rendered = report.render()
        assert "FAIL march" in rendered
        assert "coverage/March m-LZ/DRF_DS" in rendered
        assert "verify: FAILED" in rendered

    def test_unknown_artifact_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="unknown artifact"):
            run_verify(tier="tiny", goldens_dir=tmp_path, artifacts=["nope"])

    def test_table3_skipped_at_tiny(self):
        assert "table3" not in artifact_names(scope_for("tiny"))
        assert "table3" in artifact_names(scope_for("fast"))

    def test_fuzz_stage_folds_into_report(self, tmp_path):
        report = run_verify(
            tier="tiny", goldens_dir=tmp_path, artifacts=[],
            fuzz_cases=3, fuzz_seed=11,
        )
        assert report.fuzz is not None and report.fuzz.cases == 3
        assert report.ok is report.fuzz.ok

    def test_write_verify_report(self, tmp_path):
        report = run_verify(
            tier="tiny", goldens_dir=tmp_path, artifacts=[], fuzz_cases=1
        )
        out = write_verify_report(report, tmp_path / "report.json")
        document = json.loads(out.read_text())
        assert document["schema"] == REPORT_SCHEMA
        assert document["tier"] == "tiny"
        assert document["fuzz"]["cases"] == 1


def _run_cli(*args, cwd=REPO_ROOT):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        capture_output=True, text=True, env=env, cwd=cwd,
    )


@pytest.mark.slow
class TestVerifyCLI:
    """End-to-end exit-code contract of ``repro verify``."""

    def test_regen_verify_perturb_cycle(self, tmp_path):
        goldens = tmp_path / "goldens"
        base = (
            "verify", "--tier", "tiny", "--artifacts", "march",
            "--goldens-dir", str(goldens),
        )
        regen = _run_cli(*base, "--regen")
        assert regen.returncode == 0, regen.stderr
        assert "REGEN march" in regen.stdout

        report_path = tmp_path / "report.json"
        check = _run_cli(*base, "--json", str(report_path))
        assert check.returncode == 0, check.stderr
        assert "verify: OK" in check.stdout
        document = json.loads(report_path.read_text())
        assert document["ok"] is True
        assert "obs" in document  # telemetry counters ride along

        golden_file = goldens / "tiny" / "march.json"
        document = json.loads(golden_file.read_text())
        document["payload"]["structure"]["March m-LZ"]["length_n32"] += 1
        golden_file.write_text(json.dumps(document), encoding="utf-8")
        broken = _run_cli(*base)
        assert broken.returncode == 1
        assert "structure/March m-LZ/length_n32" in broken.stdout
        assert "verify: FAILED" in broken.stdout

    def test_missing_golden_is_nonzero(self, tmp_path):
        result = _run_cli(
            "verify", "--tier", "tiny", "--artifacts", "march",
            "--goldens-dir", str(tmp_path / "empty"),
        )
        assert result.returncode == 1
        assert "MISSING march" in result.stdout

    def test_fuzz_only_run(self, tmp_path):
        result = _run_cli(
            "verify", "--tier", "tiny", "--artifacts", "march",
            "--goldens-dir", str(tmp_path), "--regen", "--fuzz", "5",
        )
        assert result.returncode == 0, result.stderr
        assert "fuzz: 5/5 agreed" in result.stdout

    def test_fuzz_repro_replay(self, tmp_path):
        """A dumped (or bare) spec replays through --fuzz-repro."""
        path = tmp_path / "bare.json"
        path.write_text(json.dumps(generate_spec(42)), encoding="utf-8")
        result = _run_cli("verify", "--fuzz-repro", str(path))
        assert result.returncode == 0, result.stderr
        assert "repro seed 42" in result.stdout
        missing = _run_cli("verify", "--fuzz-repro", str(tmp_path / "no.json"))
        assert missing.returncode != 0
        assert "cannot load repro" in missing.stderr
