"""Power-switch network and wake-up ramp (refs [12][13])."""

import math

import pytest

from repro.sram import PowerSwitchNetwork

VDD = 1.1


class TestConstruction:
    def test_validation(self):
        with pytest.raises(ValueError):
            PowerSwitchNetwork(n_segments=0)
        with pytest.raises(ValueError, match="out of range"):
            PowerSwitchNetwork(n_segments=4, stuck_off=(4,))

    def test_working_segments(self):
        ps = PowerSwitchNetwork(n_segments=8, stuck_off=(0, 3))
        assert ps.working_segments == 6


class TestConductance:
    def test_daisy_chain_steps(self):
        ps = PowerSwitchNetwork(n_segments=4, r_on_segment=400.0, stage_delay=5e-9)
        assert ps.conductance_after(-1.0) == 0.0
        assert ps.conductance_after(0.0) == pytest.approx(1 / 400.0)
        assert ps.conductance_after(5e-9) == pytest.approx(2 / 400.0)
        assert ps.conductance_after(1.0) == pytest.approx(4 / 400.0)

    def test_stuck_off_reduces_final_conductance(self):
        ps = PowerSwitchNetwork(n_segments=4, stuck_off=(1, 2))
        assert ps.conductance_after(1.0) == pytest.approx(2 / ps.r_on_segment)


class TestRamp:
    def test_monotone_to_vdd(self):
        ps = PowerSwitchNetwork()
        times, volts = ps.ramp(VDD)
        assert volts[0] == 0.0
        assert all(b >= a - 1e-12 for a, b in zip(volts, volts[1:]))
        assert volts[-1] == pytest.approx(VDD, abs=1e-3)

    def test_single_stage_matches_rc(self):
        ps = PowerSwitchNetwork(n_segments=1, r_on_segment=100.0, c_rail=1e-9)
        tau = 100.0 * 1e-9
        t = ps.wakeup_time(VDD, fraction=1 - math.exp(-1))
        assert t == pytest.approx(tau, rel=1e-6)

    def test_all_stuck_off(self):
        ps = PowerSwitchNetwork(n_segments=2, stuck_off=(0, 1))
        assert ps.wakeup_time(VDD) == math.inf
        times, volts = ps.ramp(VDD)
        assert volts == [0.0]


class TestWakeupTime:
    def test_more_segments_wake_faster(self):
        slow = PowerSwitchNetwork(n_segments=2, stage_delay=1e-12)
        fast = PowerSwitchNetwork(n_segments=8, stage_delay=1e-12)
        assert fast.wakeup_time(VDD) < slow.wakeup_time(VDD)

    def test_stuck_off_segments_slow_the_ramp(self):
        healthy = PowerSwitchNetwork(n_segments=8)
        broken = PowerSwitchNetwork(n_segments=8, stuck_off=(4, 5, 6, 7))
        assert broken.wakeup_time(VDD) > healthy.wakeup_time(VDD)

    def test_ramp_consistent_with_wakeup_time(self):
        ps = PowerSwitchNetwork()
        t95 = ps.wakeup_time(VDD, fraction=0.95)
        times, volts = ps.ramp(VDD, points_per_stage=64)
        below = [t for t, v in zip(times, volts) if v < 0.95 * VDD]
        assert max(below) <= t95 * 1.05


class TestRecoveryOps:
    def test_healthy_network_loses_nothing(self):
        assert PowerSwitchNetwork().recovery_ops(VDD) == 0

    def test_defective_network_loses_operations(self):
        broken = PowerSwitchNetwork(n_segments=8, stuck_off=(1, 2, 3, 4, 5, 6, 7))
        assert broken.recovery_ops(VDD) > 0

    def test_fully_dead_network(self):
        dead = PowerSwitchNetwork(n_segments=2, stuck_off=(0, 1))
        assert dead.recovery_ops(VDD) >= 1 << 30

    def test_feeds_power_gating_fault(self):
        """The [13] chain: stuck segments -> lost post-WUP writes."""
        from repro.march import march_m_lz, run_march
        from repro.sram import LowPowerSRAM, PeripheralPowerGatingFault, SRAMConfig

        broken = PowerSwitchNetwork(
            n_segments=8, r_on_segment=4e3, c_rail=1e-9,
            stuck_off=(1, 2, 3, 4, 5, 6, 7),
        )
        ops = broken.recovery_ops(VDD, cycle_time=10e-9)
        assert ops > 0
        memory = LowPowerSRAM(SRAMConfig(n_words=16, word_bits=4))
        memory.inject(PeripheralPowerGatingFault(recovery_ops=ops))
        assert run_march(march_m_lz(), memory).detected


class TestIRDrop:
    def test_scales_with_load_and_segments(self):
        ps = PowerSwitchNetwork(n_segments=8, r_on_segment=400.0)
        assert ps.ir_drop(1e-3) == pytest.approx(1e-3 * 50.0)
        half = PowerSwitchNetwork(n_segments=8, r_on_segment=400.0, stuck_off=(0, 1, 2, 3))
        assert half.ir_drop(1e-3) == pytest.approx(1e-3 * 100.0)

    def test_dead_network_floats(self):
        assert PowerSwitchNetwork(n_segments=1, stuck_off=(0,)).ir_drop(1e-6) == math.inf
