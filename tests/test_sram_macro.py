"""Array-scale macro layer: variation maps, bucketed DRVs, escape maps.

The macro stack has three determinism/equivalence contracts, all pinned
here:

* ``MacroSpec`` variation maps regenerate bit-identically from the seed -
  in this process, per bank, and in a fresh interpreter (the campaign
  regenerates maps inside workers, so cross-process identity is what makes
  the cache sound);
* the quantile-bucketed DRV map degenerates to exact per-cell solves when
  the population is no larger than the bucket count;
* ``ArrayRetentionEngine.flip_mask`` equals the scalar engine cell by cell
  (the vectorized March executor's oracle pairing).
"""

from __future__ import annotations

import hashlib
import os
import subprocess
import sys

import numpy as np
import pytest

from repro.cell.drv import (
    clear_pair_memo,
    drv_ds_pair,
    drv_ds_pair_cached,
    drv_ds_pair_map,
    skew_scores,
)
from repro.devices.variation import CELL_TRANSISTORS, CellVariation
from repro.sram import (
    ArrayRetentionEngine,
    LowPowerSRAM,
    MacroSpec,
    RetentionEngine,
    SRAMConfig,
    bank_escape_summary,
    macro_retention,
    macro_sram,
)
from repro.analysis.macro import macro_spec as build_macro_sweep


class TestMacroSpec:
    def test_geometry_validation(self):
        with pytest.raises(ValueError):
            MacroSpec(words=0)
        with pytest.raises(ValueError):
            MacroSpec(words=64, bits=0)
        with pytest.raises(ValueError):
            MacroSpec(words=10, banks=3)  # words must divide into banks

    def test_cell_and_bank_accounting(self):
        spec = MacroSpec(words=64, bits=8, banks=4, seed=1)
        assert spec.n_cells == 512
        assert spec.words_per_bank == 16
        assert spec.bank_words(1) == range(16, 32)
        assert spec.bank_of(0) == 0
        assert spec.bank_of(63) == 3
        with pytest.raises(IndexError):
            spec.bank_words(4)

    def test_bank_sigmas_shape_and_determinism(self):
        spec = MacroSpec(words=32, bits=4, banks=2, seed=9)
        sig = spec.bank_sigmas(0)
        assert sig.shape == (16, 4, 6)
        assert np.array_equal(sig, spec.bank_sigmas(0))
        # Banks draw from distinct streams.
        assert not np.array_equal(sig, spec.bank_sigmas(1))

    def test_full_map_is_bank_concatenation(self):
        spec = MacroSpec(words=32, bits=4, banks=2, seed=9)
        full = spec.variation_sigmas()
        assert full.shape == (32, 4, 6)
        assert np.array_equal(full[:16], spec.bank_sigmas(0))
        assert np.array_equal(full[16:], spec.bank_sigmas(1))

    def test_seed_selects_the_realisation(self):
        base = MacroSpec(words=16, bits=4, banks=2, seed=1)
        other = MacroSpec(words=16, bits=4, banks=2, seed=2)
        assert not np.array_equal(
            base.variation_sigmas(), other.variation_sigmas()
        )

    def test_map_is_bit_identical_across_processes(self):
        """Same seed -> the same bytes in a fresh interpreter."""
        spec = MacroSpec(words=24, bits=4, banks=3, seed=13)
        local = hashlib.sha256(spec.variation_sigmas().tobytes()).hexdigest()
        src_dir = os.path.join(os.path.dirname(__file__), os.pardir, "src")
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.abspath(src_dir)
        script = (
            "import hashlib\n"
            "from repro.sram import MacroSpec\n"
            "spec = MacroSpec(words=24, bits=4, banks=3, seed=13)\n"
            "print(hashlib.sha256(spec.variation_sigmas().tobytes())"
            ".hexdigest())\n"
        )
        remote = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True, text=True, env=env, check=True,
        ).stdout.strip()
        assert remote == local


class TestCampaignFingerprint:
    def test_macro_seed_feeds_the_fingerprint(self):
        """A reseeded macro must never replay another seed's cache."""
        seed1 = build_macro_sweep(MacroSpec(words=64, bits=8, banks=2, seed=1))
        seed2 = build_macro_sweep(MacroSpec(words=64, bits=8, banks=2, seed=2))
        again = build_macro_sweep(MacroSpec(words=64, bits=8, banks=2, seed=1))
        assert seed1.fingerprint() == again.fingerprint()
        assert seed1.fingerprint() != seed2.fingerprint()
        # The task points themselves differ too (seed is a task param).
        assert {t.key for t in seed1.tasks} != {t.key for t in seed2.tasks}


class TestSkewScores:
    def test_alignment_with_worst_case_directions(self):
        """The score is maximal along worst-case-DRV1, minimal along its
        mirror - the projection that lets one bucketing serve both lobes."""
        as_row = lambda v: np.array(  # noqa: E731
            [[getattr(v, t) for t in CELL_TRANSISTORS]]
        )
        up = skew_scores(as_row(CellVariation.worst_case_drv1(3.0)))[0]
        down = skew_scores(as_row(CellVariation.worst_case_drv0(3.0)))[0]
        assert up == pytest.approx(18.0)
        assert down == pytest.approx(-18.0)

    def test_mirror_negates_the_score(self):
        rng = np.random.default_rng(5)
        sig = rng.standard_normal((8, 6))
        mirrored = np.array([
            [getattr(
                CellVariation(**dict(zip(CELL_TRANSISTORS, row))).mirrored(), t
            ) for t in CELL_TRANSISTORS]
            for row in sig
        ])
        assert np.allclose(skew_scores(sig), -skew_scores(mirrored))

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            skew_scores(np.zeros((4, 5)))


class TestDrvPairMap:
    def test_small_population_is_exact(self):
        """n <= buckets degenerates to one solve per cell: the map must
        equal the direct per-cell pairs bit for bit."""
        rng = np.random.default_rng(17)
        sig = rng.standard_normal((3, 6)) * 2.0
        drv1, drv0 = drv_ds_pair_map(sig, buckets=8)
        for i, row in enumerate(sig):
            variation = CellVariation(**dict(zip(CELL_TRANSISTORS, map(float, row))))
            pair = drv_ds_pair(variation)
            assert (drv1[i], drv0[i]) == pair

    def test_bucketing_reuses_representatives(self):
        """More cells than buckets: every cell inherits its bucket
        representative's pair, so the distinct value count is bounded by
        the bucket count."""
        rng = np.random.default_rng(23)
        sig = rng.standard_normal((64, 6)) * 2.0
        drv1, drv0 = drv_ds_pair_map(sig, buckets=4)
        assert len(drv1) == len(drv0) == 64
        assert len(np.unique(drv1)) <= 4
        assert len(np.unique(drv0)) <= 4

    def test_map_is_deterministic(self):
        rng = np.random.default_rng(29)
        sig = rng.standard_normal((32, 6))
        a = drv_ds_pair_map(sig, buckets=3)
        b = drv_ds_pair_map(sig, buckets=3)
        assert np.array_equal(a[0], b[0]) and np.array_equal(a[1], b[1])

    def test_empty_population(self):
        drv1, drv0 = drv_ds_pair_map(np.empty((0, 6)), buckets=4)
        assert drv1.shape == drv0.shape == (0,)

    def test_pair_memo_hits(self):
        clear_pair_memo()
        try:
            variation = CellVariation(mncc1=1.5)
            first = drv_ds_pair_cached(variation)
            second = drv_ds_pair_cached(variation)
            assert first == second == drv_ds_pair(variation)
        finally:
            clear_pair_memo()


def _random_engine(rng, n_words=8, bits=4):
    drv1 = rng.uniform(0.02, 0.25, size=(n_words, bits))
    drv0 = rng.uniform(0.02, 0.25, size=(n_words, bits))
    return ArrayRetentionEngine(drv1, drv0, corner="typical", temp_c=-40.0)


class TestArrayRetentionEngine:
    def test_shape_validation(self):
        with pytest.raises(ValueError):
            ArrayRetentionEngine(np.zeros((4, 2)), np.zeros((2, 4)))
        with pytest.raises(ValueError):
            ArrayRetentionEngine(np.zeros(4), np.zeros(4))

    def test_flip_mask_matches_scalar_engine_bit_for_bit(self):
        """The oracle pairing: the array mask and a scalar engine built
        from ``weak_cell_list`` must flip exactly the same cells."""
        rng = np.random.default_rng(31)
        engine = _random_engine(rng)
        scalar = engine.to_scalar()
        assert isinstance(scalar, RetentionEngine)
        stored = rng.integers(0, 2, size=engine.shape, dtype=np.uint8)
        for vddcc in (0.03, 0.08, 0.12, 0.3):
            for ds_time in (1e-6, 1e-3, 1.0):
                mask = engine.flip_mask(vddcc, ds_time, stored)
                flips = scalar.flips(
                    vddcc, ds_time, lambda a, b: int(stored[a, b])
                )
                expected = np.zeros(engine.shape, dtype=bool)
                for addr, bit in flips:
                    expected[addr, bit] = True
                assert np.array_equal(mask, expected), (vddcc, ds_time)

    def test_flip_times_structure(self):
        engine = ArrayRetentionEngine(
            np.full((2, 2), 0.10), np.full((2, 2), 0.20)
        )
        ones = np.ones((2, 2), dtype=np.uint8)
        assert np.all(np.isinf(engine.flip_times(0.15, ones)))  # above DRV1
        assert np.all(engine.flip_times(0.0, ones) == 0.0)
        finite = engine.flip_times(0.05, ones)
        assert np.all(np.isfinite(finite)) and np.all(finite > 0.0)

    def test_flips_protocol_compat(self):
        """The scalar ``flips`` protocol works on the array engine (the
        memory's legacy wake-up path)."""
        rng = np.random.default_rng(37)
        engine = _random_engine(rng, n_words=4, bits=3)
        stored = np.zeros((4, 3), dtype=np.uint8)
        flips = engine.flips(0.05, 1.0, lambda a, b: int(stored[a, b]))
        mask = engine.flip_mask(0.05, 1.0, stored)
        assert sorted(flips) == [
            (int(a), int(b)) for a, b in zip(*np.nonzero(mask))
        ]

    def test_vectorized_wake_up_path(self):
        """A memory with an array engine wakes up through the flip mask."""
        engine = ArrayRetentionEngine(
            np.full((4, 2), 0.30), np.full((4, 2), 0.02),
            corner="typical", temp_c=-40.0,
        )
        sram = LowPowerSRAM(
            SRAMConfig(n_words=4, word_bits=2), retention=engine
        )
        sram.fill(0b11)  # stored 1s are at risk (DRV1 = 0.3 V)
        sram.enter_deep_sleep(ds_time=10.0, vddcc=0.1)
        flipped = sram.wake_up()
        assert flipped == [(a, b) for a in range(4) for b in range(2)]
        assert all(sram.read(a) == 0 for a in range(4))


class TestMacroRetention:
    def test_bank_engine_is_slice_of_full_engine(self):
        spec = MacroSpec(words=32, bits=4, banks=2, seed=5)
        # Same bucket count per call; bank engines re-bucket within the
        # bank, so compare against engines built from the bank's sigmas.
        bank0 = macro_retention(spec, bank=0, buckets=3)
        again = macro_retention(spec, bank=0, buckets=3)
        assert np.array_equal(bank0.drv1, again.drv1)
        assert bank0.shape == (16, 4)

    def test_macro_sram_scalar_flag(self):
        spec = MacroSpec(words=8, bits=2, banks=1, seed=5)
        vec = macro_sram(spec, buckets=2)
        sca = macro_sram(spec, buckets=2, scalar=True)
        assert getattr(vec.retention, "vectorized", False)
        assert not getattr(sca.retention, "vectorized", False)
        assert vec.config.n_words == 8 and vec.config.word_bits == 2


class TestEscapeSummary:
    @pytest.fixture(scope="class")
    def summary(self):
        spec = MacroSpec(words=64, bits=8, banks=2, seed=3)
        return bank_escape_summary(
            spec, 0, vddcc=0.05, ds_time=1e-3, mission_time=1.0,
            corner="typical", temp_c=-40.0, buckets=6,
        )

    def test_counts_are_consistent(self, summary):
        assert summary["cells"] == 256
        assert 0 <= summary["detected"] <= summary["cells"]
        assert 0 <= summary["escaped"] <= summary["cells"]
        # Escapes flip in the field but not during the test, so together
        # with the detected set they cannot exceed the mission flips.
        assert summary["detected"] + summary["escaped"] >= summary["mission_flips"]
        assert summary["test_flips"] <= summary["mission_flips"]

    def test_detection_equals_test_flips(self, summary):
        """With no injected functional faults, March m-LZ detects exactly
        the cells whose flip time fits inside the test's DS window."""
        assert summary["detected"] == summary["test_flips"]

    def test_cold_corner_has_escapes(self, summary):
        """The defining population of the paper's DS-time argument."""
        assert summary["escaped"] > 0

    def test_bulk_collapse_is_rejected(self):
        spec = MacroSpec(words=16, bits=4, banks=1, seed=3)
        with pytest.raises(ValueError):
            bank_escape_summary(spec, 0, vddcc=0.0, buckets=2)
