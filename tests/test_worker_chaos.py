"""Kill things and check the books still balance.

The robustness contract of the multi-host worker tier, exercised with
real processes and real signals:

* SIGKILL a remote worker mid-chunk: its lease expires, the chunk goes
  through the same bisection/conviction machinery as a crashed pool
  process, and a surviving worker finishes the job bit-identical to
  the serial executor.
* ``kill -9`` the daemon mid-job: the fsync'd submission log replays
  the unfinished job on the next start, points already checkpointed
  come back as cache hits, and the results ledger shows every point
  computed exactly once.

Everything asserts the zero-duplicate-compute invariant through the
content-addressed cache: one ``(key, fingerprint)`` line per point, no
matter how many processes died along the way.
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.campaign import SweepSpec, TaskPoint, run_campaign
from repro.serve import JobState, SweepService
from repro.serve.client import ServeClient

from .test_serve import _Daemon, wait_terminal

#: Generous: these tests spawn interpreters and wait out lease TTLs.
DEADLINE = 45.0

REPO = Path(__file__).resolve().parent.parent


def probe_spec(xs, name="chaos-probe", sleep_ms=150):
    return SweepSpec.build(name, [
        TaskPoint.make("probe", x=x, sleep_ms=sleep_ms) for x in xs
    ])


def probe_payload(xs, name="chaos-probe", sleep_ms=150):
    """The same sweep as :func:`probe_spec`, as a raw HTTP submission."""
    return {"name": name, "tasks": [
        {"kind": "probe", "params": {"x": x, "sleep_ms": sleep_ms}}
        for x in xs
    ]}


def _child_env(token=None):
    env = dict(os.environ, PYTHONPATH=str(REPO / "src"))
    if token is not None:
        env["REPRO_WORKER_TOKEN"] = token
    return env


def spawn_worker(url, name, token=None):
    return subprocess.Popen(
        [sys.executable, "-m", "repro", "worker",
         "--url", url, "--name", name, "--grace", "0.2"],
        env=_child_env(token), cwd=str(REPO),
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
    )


def spawn_daemon(cache_dir, port_file, port=0, token=None, extra=()):
    return subprocess.Popen(
        [sys.executable, "-m", "repro", "serve",
         "--cache-dir", str(cache_dir), "--port", str(port),
         "--port-file", str(port_file), *extra],
        env=_child_env(token), cwd=str(REPO),
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
    )


def wait_for_port(port_file, deadline=DEADLINE):
    end = time.monotonic() + deadline
    while time.monotonic() < end:
        try:
            text = port_file.read_text().strip()
        except FileNotFoundError:
            text = ""
        if text:
            return int(text)
        time.sleep(0.05)
    raise AssertionError("daemon never wrote its port file")


def reap(*procs, sig=signal.SIGKILL):
    for proc in procs:
        if proc is not None and proc.poll() is None:
            proc.send_signal(sig)
            proc.wait(10)


def ledger(cache_dir):
    """Parsed ``(key, fingerprint)`` pairs from the results checkpoint."""
    path = Path(cache_dir) / "results.jsonl"
    pairs = []
    if path.exists():
        for line in path.read_text(encoding="utf-8").splitlines():
            try:
                entry = json.loads(line)
            except json.JSONDecodeError:
                continue  # torn tail from a kill mid-append
            pairs.append((entry["key"], entry["fingerprint"]))
    return pairs


class TestWorkerSigkill:
    def test_killed_worker_expires_and_survivor_finishes(self, tmp_path):
        spec = probe_spec(range(10))
        serial = run_campaign(spec, jobs=1,
                              cache_dir=str(tmp_path / "serial"))
        svc = SweepService(jobs=0, cache_dir=tmp_path / "cache",
                           lease_ttl_s=0.75).start()
        victim = survivor = None
        try:
            with _Daemon(svc) as daemon:
                url = f"http://127.0.0.1:{daemon.port}"
                job = svc.submit(spec)
                victim = spawn_worker(url, "victim")
                deadline = time.monotonic() + DEADLINE
                while svc.scheduler.leased == 0:
                    assert time.monotonic() < deadline, "no lease granted"
                    time.sleep(0.02)
                os.kill(victim.pid, signal.SIGKILL)  # mid-chunk, no drain
                victim.wait(DEADLINE)
                survivor = spawn_worker(url, "survivor")
                wait_terminal(svc, job, deadline=DEADLINE)
                assert svc.store.get(job.id).state is JobState.DONE
                counters = svc.stats()["counters"]
                assert counters["serve.leases.expired"] >= 1
                # Zero duplicate compute: every point absorbed exactly once.
                assert counters["serve.points.executed"] == 10
                served = svc.store.get(job.id).records
                assert set(served) == set(serial.records)
                for key, record in serial.records.items():
                    assert served[key].value == record.value
                    assert served[key].status == record.status
        finally:
            reap(victim, survivor)
            svc.stop(timeout=DEADLINE)
        pairs = ledger(tmp_path / "cache")
        assert len(pairs) == len(set(pairs)) == 10

    def test_sigterm_worker_drains_cleanly_and_blame_free(self, tmp_path):
        svc = SweepService(jobs=0, cache_dir=tmp_path / "cache",
                           lease_ttl_s=5.0).start()
        worker = None
        try:
            with _Daemon(svc) as daemon:
                url = f"http://127.0.0.1:{daemon.port}"
                job = svc.submit(probe_spec(range(6), sleep_ms=400))
                worker = spawn_worker(url, "drainer")
                deadline = time.monotonic() + DEADLINE
                while svc.scheduler.leased == 0:
                    assert time.monotonic() < deadline, "no lease granted"
                    time.sleep(0.02)
                worker.send_signal(signal.SIGTERM)
                assert worker.wait(DEADLINE) == 0  # graceful drain exit
                # The abandoned chunk came straight back, no TTL wait and
                # no blame: nothing expired, nothing quarantined.
                counters = svc.stats()["counters"]
                assert counters.get("serve.leases.expired", 0) == 0
                assert not svc.scheduler.has_suspects
                worker = spawn_worker(url, "finisher")
                wait_terminal(svc, job, deadline=DEADLINE)
                assert svc.store.get(job.id).state is JobState.DONE
        finally:
            reap(worker)
            svc.stop(timeout=DEADLINE)


class TestDaemonKill9:
    def test_restart_replays_the_log_with_zero_duplicates(self, tmp_path):
        cache = tmp_path / "cache"
        port_file = tmp_path / "port"
        daemon = spawn_daemon(cache, port_file, extra=("--jobs", "1"))
        try:
            port = wait_for_port(port_file)
            client = ServeClient(f"http://127.0.0.1:{port}")
            job = client.submit(probe_payload(range(8)))
            # Let a couple of points reach the durable checkpoint, then
            # pull the plug with no warning whatsoever.
            deadline = time.monotonic() + DEADLINE
            while len(ledger(cache)) < 2:
                assert time.monotonic() < deadline, "no points checkpointed"
                time.sleep(0.05)
            os.kill(daemon.pid, signal.SIGKILL)
            daemon.wait(DEADLINE)
        finally:
            reap(daemon)
        executed_before = len(ledger(cache))
        assert executed_before < 8, "daemon finished before the kill"

        svc = SweepService(jobs=1, cache_dir=cache).start()
        try:
            revived = svc.store.get(job["id"])
            assert revived is not None, "WAL did not replay the job"
            wait_terminal(svc, revived, deadline=DEADLINE)
            assert svc.store.get(job["id"]).state is JobState.DONE
            assert len(svc.job_records(job["id"])) == 8
            counters = svc.stats()["counters"]
            assert counters["serve.jobs.recovered"] == 1
            # The restart computed only what the crash interrupted...
            assert counters["serve.points.executed"] == 8 - executed_before
            assert counters["serve.points.cache_hits"] == executed_before
        finally:
            svc.stop(timeout=DEADLINE)
        # ...and the ledger shows each point exactly once.
        pairs = ledger(cache)
        assert len(pairs) == len(set(pairs)) == 8


class TestEndToEndAcceptance:
    def test_worker_sigkill_plus_daemon_kill9_still_bit_identical(
            self, tmp_path):
        """The issue's acceptance run, miniaturised.

        Two authed remote workers chew a probe campaign; one is
        SIGKILLed mid-chunk, then the daemon is ``kill -9``'d mid-job.
        A daemon restarted on the same cache and port replays the job,
        the surviving worker re-registers, and the final results are
        bit-identical to the serial executor with a duplicate-free
        ledger.
        """
        spec = probe_spec(range(12))
        serial = run_campaign(spec, jobs=1,
                              cache_dir=str(tmp_path / "serial"))
        cache = tmp_path / "cache"
        port_file = tmp_path / "port"
        serve_args = ("--jobs", "0", "--lease-ttl", "1.0")
        daemon = spawn_daemon(cache, port_file, token="cafe",
                              extra=serve_args)
        alpha = beta = None
        try:
            port = wait_for_port(port_file)
            url = f"http://127.0.0.1:{port}"
            client = ServeClient(url)
            job = client.submit(probe_payload(range(12)))
            alpha = spawn_worker(url, "alpha", token="cafe")
            beta = spawn_worker(url, "beta", token="cafe")

            def counter(name):
                try:
                    return client.stats()["counters"].get(name, 0)
                except Exception:  # noqa: BLE001 - daemon mid-restart
                    return 0

            deadline = time.monotonic() + DEADLINE
            while counter("serve.leases.granted") < 2:
                assert time.monotonic() < deadline, "workers never leased"
                time.sleep(0.05)
            os.kill(alpha.pid, signal.SIGKILL)
            alpha.wait(DEADLINE)
            while len(ledger(cache)) < 2:
                assert time.monotonic() < deadline, "no points checkpointed"
                time.sleep(0.05)
            os.kill(daemon.pid, signal.SIGKILL)
            daemon.wait(DEADLINE)
            assert len(ledger(cache)) < 12, "job finished before the kill"

            port_file.unlink()
            daemon = spawn_daemon(cache, port_file, port=port, token="cafe",
                                  extra=serve_args)
            assert wait_for_port(port_file) == port

            end = time.monotonic() + DEADLINE
            final = None
            while time.monotonic() < end:
                try:
                    final = client.job(job["id"])
                except Exception:  # noqa: BLE001 - daemon still booting
                    final = None
                if final is not None and final["state"] == "done":
                    break
                time.sleep(0.1)
            assert final is not None and final["state"] == "done", \
                f"job never finished after restart: {final}"

            result = client.result(job["id"])
            assert len(result["results"]) == 12
            for key, record in serial.records.items():
                assert result["results"][key]["value"] == record.value
                assert result["results"][key]["status"] == record.status

            # Graceful drain of the survivor: SIGTERM, exit 0.
            beta.send_signal(signal.SIGTERM)
            assert beta.wait(DEADLINE) == 0
        finally:
            reap(alpha, beta, daemon)
        pairs = ledger(cache)
        assert len(pairs) == len(set(pairs)) == 12
