"""DC analysis: Newton robustness, sweeps, bistability."""

import numpy as np
import pytest

from repro.devices import CORNERS, MosfetModel, nmos_params, pmos_params
from repro.spice import Circuit, ConvergenceError, dc_sweep, solve_dc


def _inverter(circuit, name, vin_node, vout_node, vdd_node, corner="typical", w=120e-9):
    c = CORNERS[corner]
    circuit.mosfet(
        f"{name}_p", vout_node, vin_node, vdd_node,
        MosfetModel(pmos_params(f"{name}_p", w), c, 25.0),
    )
    circuit.mosfet(
        f"{name}_n", vout_node, vin_node, "0",
        MosfetModel(nmos_params(f"{name}_n", w), c, 25.0),
    )


class TestSolveDC:
    def test_x0_length_validation(self):
        c = Circuit()
        c.vsource("v", "a", "0", 1.0)
        with pytest.raises(ValueError, match="unknowns"):
            solve_dc(c, x0=np.zeros(17))

    def test_inverter_rails(self):
        c = Circuit()
        c.vsource("vdd", "vdd", "0", 1.1)
        c.vsource("vin", "in", "0", 0.0)
        _inverter(c, "inv", "in", "out", "vdd")
        assert solve_dc(c).voltage("out") == pytest.approx(1.1, abs=1e-3)
        c.element("vin").voltage = 1.1
        assert solve_dc(c).voltage("out") == pytest.approx(0.0, abs=1e-3)

    def test_bistable_latch_selects_state_from_x0(self):
        """A cross-coupled inverter pair converges to the seeded state."""
        def build():
            c = Circuit()
            c.vsource("vdd", "vdd", "0", 1.1)
            _inverter(c, "i1", "b", "a", "vdd")
            _inverter(c, "i2", "a", "b", "vdd")
            return c

        c = build()
        x0 = np.zeros(c.unknown_count())
        x0[c.node("a") - 1] = 1.1  # seed a high
        s = solve_dc(c, x0=x0)
        assert s.voltage("a") > 1.0 and s.voltage("b") < 0.1

        c = build()
        x0 = np.zeros(c.unknown_count())
        x0[c.node("b") - 1] = 1.1  # seed the opposite state
        s = solve_dc(c, x0=x0)
        assert s.voltage("b") > 1.0 and s.voltage("a") < 0.1

    def test_floating_node_handled_by_gmin(self):
        """A node with no DC path resolves (to ~0) instead of singularity."""
        c = Circuit()
        c.vsource("v", "a", "0", 1.0)
        c.capacitor("c1", "a", "float", 1e-15)
        c.resistor("r", "a", "0", 1e3)
        s = solve_dc(c)
        assert abs(s.voltage("float")) < 1e-3


class TestDCSweep:
    def test_vtc_monotone(self):
        c = Circuit()
        c.vsource("vdd", "vdd", "0", 1.1)
        c.vsource("vin", "in", "0", 0.0)
        _inverter(c, "inv", "in", "out", "vdd")
        values = np.linspace(0.0, 1.1, 23)
        sols = dc_sweep(c, "vin", values)
        outs = [s.voltage("out") for s in sols]
        assert all(a >= b - 1e-9 for a, b in zip(outs, outs[1:]))
        assert outs[0] > 1.0 and outs[-1] < 0.05

    def test_sweep_restores_source_value(self):
        c = Circuit()
        c.vsource("vin", "a", "0", 0.7)
        c.resistor("r", "a", "0", 1e3)
        dc_sweep(c, "vin", [0.0, 0.5, 1.0])
        assert c.element("vin").voltage == 0.7

    def test_sweep_requires_voltage_source(self):
        c = Circuit()
        c.vsource("vin", "a", "0", 1.0)
        c.resistor("r", "a", "0", 1e3)
        with pytest.raises(TypeError):
            dc_sweep(c, "r", [1.0])

    def test_sweep_solution_count(self):
        c = Circuit()
        c.vsource("vin", "a", "0", 0.0)
        c.resistor("r", "a", "0", 1e3)
        sols = dc_sweep(c, "vin", np.linspace(0, 1, 7))
        assert len(sols) == 7
        assert sols[-1].voltage("a") == pytest.approx(1.0)
