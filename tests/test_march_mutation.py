"""Mutation-style proof that March m-LZ's 5N+4 length is load-bearing.

Satellite of the verify tentpole: every DRF_DS fault-model variant must be
(a) detected by the full March m-LZ and (b) *missed* by at least one
strictly shorter prefix of it.  If a future edit drops or reorders an
element and some variant is still caught by a shorter test, these tests
localise exactly which element stopped paying for itself.

The minimal detecting prefixes are themselves pinned:

* lost-1 variants need ME1..ME4 (the first sleep cycle plus ME4's r1);
* lost-0 variants need all seven elements - ME5/ME6's second sleep on the
  all-0s background and ME7's r0 are exactly the extension the paper adds
  over March LZ.
"""

import pytest

from repro.march import evaluate_coverage, march_lz, march_m_lz
from repro.march.dsl import MarchTest
from repro.march.library import march_c_minus, march_ss, mats_plus
from repro.sram import SRAMConfig, drf_ds_variants

CFG = SRAMConfig(n_words=16, word_bits=4)

VARIANTS = drf_ds_variants(addr=3, bit=1)
VARIANT_LABELS = [label for label, _ in VARIANTS]

#: Element count of the shortest March m-LZ prefix that detects each
#: variant.  7 == the full test: removing anything breaks detection.
MINIMAL_DETECTING_PREFIX = {
    "DRF_DS1": 4,
    "DRF_DS1_slow": 4,
    "DRF_DS0": 7,
    "DRF_DS0_slow": 7,
}


def _prefix(test: MarchTest, k: int) -> MarchTest:
    return MarchTest(f"{test.name}[:{k}]", test.elements[:k])


def _detects(test: MarchTest, label: str) -> bool:
    instances = [pair for pair in VARIANTS if pair[0] == label]
    assert instances, f"unknown variant {label}"
    return evaluate_coverage(test, instances, config=CFG).coverage == 1.0


class TestFullTestDetectsEverything:
    @pytest.mark.parametrize("label", VARIANT_LABELS)
    def test_march_m_lz_detects(self, label):
        assert _detects(march_m_lz(), label)


class TestEveryVariantEscapesAShorterPrefix:
    @pytest.mark.parametrize("label", VARIANT_LABELS)
    def test_some_strict_prefix_misses(self, label):
        full = march_m_lz()
        missed_by = [
            k
            for k in range(1, len(full.elements))
            if not _detects(_prefix(full, k), label)
        ]
        assert missed_by, f"{label} caught by every strict prefix"

    @pytest.mark.parametrize("label", VARIANT_LABELS)
    def test_minimal_detecting_prefix_is_pinned(self, label):
        """Detection flips exactly at the pinned prefix length and stays on."""
        full = march_m_lz()
        expected = MINIMAL_DETECTING_PREFIX[label]
        for k in range(1, len(full.elements) + 1):
            assert _detects(_prefix(full, k), label) == (k >= expected), (
                f"{label}: prefix of {k} element(s) "
                f"{'detects' if k < expected else 'misses'} unexpectedly"
            )

    def test_lost_zero_variants_need_the_full_test(self):
        """The paper's extension (ME5..ME7) is exactly what DS0 needs."""
        assert all(
            MINIMAL_DETECTING_PREFIX[label] == len(march_m_lz().elements)
            for label in ("DRF_DS0", "DRF_DS0_slow")
        )


class TestMarchLZGap:
    """March LZ == the 4-element prefix: it inherits exactly that gap."""

    @pytest.mark.parametrize("label", ["DRF_DS1", "DRF_DS1_slow"])
    def test_march_lz_detects_lost_ones(self, label):
        assert _detects(march_lz(), label)

    @pytest.mark.parametrize("label", ["DRF_DS0", "DRF_DS0_slow"])
    def test_march_lz_misses_lost_zeros(self, label):
        assert not _detects(march_lz(), label)

    def test_classic_tests_are_blind_to_drf_ds(self):
        """No DSM operation, no retention stress, zero coverage."""
        for factory in (mats_plus, march_c_minus, march_ss):
            report = evaluate_coverage(factory(), VARIANTS, config=CFG)
            assert report.coverage == 0.0, factory().name


class TestDSTimeIsLoadBearing:
    def test_short_sleep_misses_slow_variants(self):
        """A DSM shorter than the recommended DS time skips slow DRFs."""
        quick = march_m_lz(ds_time=1e-6)
        for label in ("DRF_DS1_slow", "DRF_DS0_slow"):
            assert not _detects(quick, label)
        # ...while the instantaneous variants are still caught.
        for label in ("DRF_DS1", "DRF_DS0"):
            assert _detects(quick, label)
