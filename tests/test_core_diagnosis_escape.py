"""Diagnosis and escape analysis on synthetic detection matrices."""

import math

import pytest

from repro.core.diagnosis import (
    Candidate,
    diagnose,
    distinguishable_pairs,
    syndrome_for,
)
from repro.core.escape import (
    LogUniformResistance,
    compare_flows,
    escape_report,
    flow_escape_summary,
    total_escape_probability,
)
from repro.core.testflow import DetectionMatrix, TestConfig, TestFlow, TestIteration
from repro.regulator import VrefSelect

C1 = TestConfig(1.0, VrefSelect.VREF74)
C2 = TestConfig(1.1, VrefSelect.VREF70)
C3 = TestConfig(1.2, VrefSelect.VREF64)


@pytest.fixture()
def matrix():
    """Three defects with distinct threshold patterns across three configs.

    Df1: 10K / 30K / 100K   (most sensitive at C1)
    Df3: None / 20K / 25K   (invisible at C1 - a divider-position defect)
    Df9: 1M / 1M / 1M       (uniform)
    """
    m = DetectionMatrix(drv_worst=0.7)
    m.entries.update({
        (1, C1): 10e3, (1, C2): 30e3, (1, C3): 100e3,
        (3, C1): None, (3, C2): 20e3, (3, C3): 25e3,
        (9, C1): 1e6, (9, C2): 1e6, (9, C3): 1e6,
    })
    return m


@pytest.fixture()
def flow():
    return TestFlow(
        iterations=[
            TestIteration(C1, (), (1, 9)),
            TestIteration(C2, (), (1, 3, 9)),
            TestIteration(C3, (), (1, 3, 9)),
        ]
    )


class TestSyndromes:
    def test_predicted_patterns(self, matrix, flow):
        assert syndrome_for(1, 50e3, flow, matrix) == (True, True, False)
        assert syndrome_for(3, 22e3, flow, matrix) == (False, True, False)
        assert syndrome_for(9, 1e5, flow, matrix) == (False, False, False)
        assert syndrome_for(9, 1e7, flow, matrix) == (True, True, True)


class TestDiagnosis:
    def test_unique_candidate(self, matrix, flow):
        result = diagnose((False, True, False), flow, matrix)
        assert result.defect_ids() == [3]
        c = result.candidates[0]
        assert c.r_low == pytest.approx(20e3)
        assert c.r_high == pytest.approx(25e3)

    def test_ambiguous_syndrome(self, matrix, flow):
        result = diagnose((True, True, True), flow, matrix)
        assert set(result.defect_ids()) == {1, 9}
        assert result.is_ambiguous

    def test_all_pass_means_nothing_to_diagnose(self, matrix, flow):
        assert diagnose((False, False, False), flow, matrix).candidates == []

    def test_impossible_syndrome(self, matrix, flow):
        """Only the *least* sensitive iteration fails: nothing monotone
        explains C3 failing while the lower-threshold C1/C2 pass."""
        result = diagnose((False, False, True), flow, matrix)
        assert result.candidates == []

    def test_single_iteration_failure_brackets_resistance(self, matrix, flow):
        """C1-only failure pins Df1 into its [10K, 30K) window."""
        result = diagnose((True, False, False), flow, matrix)
        assert result.defect_ids() == [1]
        c = result.candidates[0]
        assert (c.r_low, c.r_high) == (pytest.approx(10e3), pytest.approx(30e3))

    def test_length_validation(self, matrix, flow):
        with pytest.raises(ValueError):
            diagnose((True,), flow, matrix)

    def test_str(self, matrix, flow):
        text = str(diagnose((False, True, False), flow, matrix))
        assert "FPF"[::-1] not in text  # sanity: uses P/F letters
        assert "PFP" in text and "Df3" in text

    def test_distinguishable_pairs(self, matrix, flow):
        probes = [5e3, 22e3, 50e3, 5e5, 5e6]
        table = distinguishable_pairs(flow, matrix, probes)
        assert table[(1, 3)] is True
        assert table[(1, 9)] is True


class TestDistribution:
    def test_cdf_bounds(self):
        d = LogUniformResistance(10.0, 1e6)
        assert d.cdf(1.0) == 0.0
        assert d.cdf(1e7) == 1.0
        assert d.cdf(1e3) == pytest.approx(0.4, abs=1e-9)  # 2 of 5 decades

    def test_validation(self):
        with pytest.raises(ValueError):
            LogUniformResistance(10.0, 1.0)

    def test_probability_between(self):
        d = LogUniformResistance(1.0, 1e4)
        assert d.probability_between(1e1, 1e3) == pytest.approx(0.5)
        assert d.probability_between(5.0, 5.0) == 0.0


class TestEscape:
    def test_flow_covering_best_config_has_no_escape(self, matrix, flow):
        report = escape_report(1, flow, matrix)
        # The flow includes C1, defect 1's most sensitive config.
        assert report.p_escape == 0.0
        assert report.p_field_failure > 0.0

    def test_dropping_best_config_creates_escape(self, matrix):
        partial = TestFlow(
            iterations=[TestIteration(C2, (), ()), TestIteration(C3, (), ())]
        )
        report = escape_report(1, partial, matrix)
        # Resistances in [10K, 30K) fail in the field but pass the flow.
        d = LogUniformResistance()
        assert report.p_escape == pytest.approx(
            d.probability_between(10e3, 30e3)
        )

    def test_summary_and_totals(self, matrix, flow):
        reports = flow_escape_summary(flow, matrix)
        assert set(reports) == {1, 3, 9}
        assert total_escape_probability(reports) == 0.0

    def test_compare_flows(self, matrix, flow):
        comparison = compare_flows(flow, matrix)
        assert comparison["naive_escape"] == 0.0
        assert comparison["optimised_escape"] == 0.0

    def test_undetectable_defect(self, matrix):
        matrix.entries[(7, C1)] = None
        matrix.entries[(7, C2)] = None
        matrix.entries[(7, C3)] = None
        flow = TestFlow(iterations=[TestIteration(C1, (), ())])
        report = escape_report(7, flow, matrix)
        assert report.p_field_failure == 0.0
        assert report.p_escape == 0.0
