"""Vectorized March executor vs the scalar oracle.

``run_march_vectorized`` applies each march element as whole-array numpy
operations; ``run_march`` walks cells one at a time.  Because every
plane-capable fault is cell-local (its effect on a cell depends only on
that cell's own operation history), the two loop orders must produce the
*identical* failure list and operation count - bit for bit, in the same
order.  These tests enforce that equivalence across fault mixes, address
orders, backgrounds, truncation, and (via hypothesis) random fault maps
on random geometries.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.march import (
    march_c_minus,
    march_lz,
    march_m_lz,
    mats_plus,
    run_march,
    run_march_vectorized,
)
from repro.sram import (
    ArrayRetentionEngine,
    CouplingFaultIdempotent,
    DataRetentionFault,
    LowPowerSRAM,
    PeripheralPowerGatingFault,
    SRAMConfig,
    StuckAtFault,
    TransitionFault,
)
from repro.sram.decoder import DecoderFault

CONFIG = SRAMConfig(n_words=16, word_bits=8)
COLD = 0.04  # deep-sleep VDD_CC under every weak cell's DRV


def _assert_equivalent(test, build_sram, **kwargs):
    """Run both executors on freshly-built, identical SRAMs and compare."""
    scalar = run_march(test, build_sram(), **kwargs)
    vectorized = run_march_vectorized(test, build_sram(), **kwargs)
    assert [dataclasses.astuple(f) for f in vectorized.failures] == [
        dataclasses.astuple(f) for f in scalar.failures
    ]
    assert vectorized.operations == scalar.operations
    return scalar, vectorized


def _drf_map():
    """An array-backed DRF covering several cells with mixed parameters."""
    return DataRetentionFault(
        word=[1, 1, 7, 12, 15],
        bit=[0, 5, 3, 7, 2],
        lost_value=[1, 0, 1, 1, 0],
        drv=[0.10, 0.08, 0.30, 0.12, 0.25],
        min_ds_time=[0.0, 0.0, 5e-4, 0.0, 2.0],
    )


class TestDeterministicDifferentials:
    def test_fault_free_memory_passes_both(self):
        scalar, vectorized = _assert_equivalent(
            march_m_lz(), lambda: LowPowerSRAM(CONFIG)
        )
        assert scalar.passed and vectorized.passed
        # March m-LZ is 5N+4 word operations.
        assert scalar.operations == 5 * CONFIG.n_words + 4

    @pytest.mark.parametrize(
        "make_test", [march_m_lz, march_lz, mats_plus, march_c_minus],
        ids=["m-lz", "lz", "mats+", "c-"],
    )
    def test_mixed_fault_population(self, make_test):
        """SAF + TF + PPG + a multi-cell DRF, across the test library
        (March C- exercises descending elements)."""

        def build():
            m = LowPowerSRAM(CONFIG)
            m.inject(StuckAtFault(3, 1, 1))
            m.inject(StuckAtFault(9, 6, 0))
            m.inject(TransitionFault(5, 2, rising=True))
            m.inject(TransitionFault(14, 0, rising=False))
            m.inject(PeripheralPowerGatingFault(recovery_ops=5))
            m.inject(_drf_map())
            return m

        _assert_equivalent(make_test(), build, vddcc_for_sleep=lambda i: COLD)

    @pytest.mark.parametrize("background", [None, 0xA5, 0x01, 0xFF])
    def test_data_backgrounds(self, background):
        def build():
            m = LowPowerSRAM(CONFIG)
            m.inject(StuckAtFault(0, 0, 1))
            m.inject(TransitionFault(2, 7, rising=True))
            m.inject(_drf_map())
            return m

        _assert_equivalent(
            march_m_lz(), build,
            vddcc_for_sleep=lambda i: COLD, background=background,
        )

    @pytest.mark.parametrize("recovery_ops", [0, 1, 7, 16, 40, 1000])
    def test_ppg_recovery_windows(self, recovery_ops):
        """The lost-write window can end mid-element, mid-word, or never."""

        def build():
            m = LowPowerSRAM(CONFIG)
            m.inject(PeripheralPowerGatingFault(recovery_ops=recovery_ops))
            return m

        _assert_equivalent(march_m_lz(), build, vddcc_for_sleep=lambda i: COLD)

    def test_max_failures_truncation(self):
        """Both executors cap the *collected* list at the same point while
        still executing the full test."""

        def build():
            m = LowPowerSRAM(CONFIG)
            # Every cell of four words stuck -> far more mismatches than cap.
            for addr in (2, 5, 8, 11):
                for bit in range(CONFIG.word_bits):
                    m.inject(StuckAtFault(addr, bit, 1))
            return m

        scalar, vectorized = _assert_equivalent(
            march_m_lz(), build, max_failures=7
        )
        assert len(scalar.failures) == len(vectorized.failures) == 7
        # Execution continued: full operation count despite the cap.
        assert scalar.operations == 5 * CONFIG.n_words + 4

    def test_full_stack_retention_differential(self):
        """ArrayRetentionEngine vs its own ``to_scalar()`` under March
        m-LZ: the complete vectorized stack against the complete scalar
        stack."""
        rng = np.random.default_rng(41)
        drv1 = rng.uniform(0.02, 0.20, size=(CONFIG.n_words, CONFIG.word_bits))
        drv0 = rng.uniform(0.02, 0.20, size=(CONFIG.n_words, CONFIG.word_bits))

        def engine():
            return ArrayRetentionEngine(
                drv1, drv0, corner="typical", temp_c=-40.0
            )

        scalar = run_march(
            march_m_lz(),
            LowPowerSRAM(CONFIG, retention=engine().to_scalar()),
            vddcc_for_sleep=lambda i: 0.05,
        )
        vectorized = run_march_vectorized(
            march_m_lz(),
            LowPowerSRAM(CONFIG, retention=engine()),
            vddcc_for_sleep=lambda i: 0.05,
        )
        assert [dataclasses.astuple(f) for f in vectorized.failures] == [
            dataclasses.astuple(f) for f in scalar.failures
        ]
        assert vectorized.operations == scalar.operations
        assert not vectorized.passed  # cold DRVs above 50 mV do flip


class TestFallback:
    def test_coupling_fault_falls_back_to_scalar(self):
        """Coupling faults are not plane-capable: the vectorized entry
        point must silently delegate and still match the scalar result."""

        def build():
            m = LowPowerSRAM(CONFIG)
            m.inject(CouplingFaultIdempotent(1, 0, 2, 0, victim_value=1))
            return m

        assert not build().plane_capable
        _assert_equivalent(march_c_minus(), build)

    def test_decoder_fault_falls_back_to_scalar(self):
        def build():
            m = LowPowerSRAM(CONFIG)
            m.decoder.inject(DecoderFault("wrong", addr=3, others=(4,)))
            return m

        assert not build().plane_capable
        _assert_equivalent(march_c_minus(), build)

    def test_plane_capable_memory_is_detected(self):
        m = LowPowerSRAM(CONFIG)
        m.inject(StuckAtFault(0, 0, 1))
        m.inject(_drf_map())
        m.inject(PeripheralPowerGatingFault())
        assert m.plane_capable


# --------------------------------------------------------------------------
# Satellite (b): property-based equivalence on random macro fault maps.
# --------------------------------------------------------------------------

@st.composite
def _fault_plan(draw):
    """Random geometry + random cell-local fault population + background."""
    n_words = draw(st.integers(2, 12))
    word_bits = draw(st.integers(1, 8))
    cell = st.tuples(
        st.integers(0, n_words - 1), st.integers(0, word_bits - 1)
    )

    safs = draw(st.lists(
        st.tuples(cell, st.integers(0, 1)), max_size=4, unique_by=lambda s: s[0],
    ))
    tfs = draw(st.lists(
        st.tuples(cell, st.booleans()), max_size=4, unique_by=lambda t: t[0],
    ))
    drf_cells = draw(st.lists(cell, max_size=6, unique=True))
    drf = None
    if drf_cells:
        n = len(drf_cells)
        drf = dict(
            word=[c[0] for c in drf_cells],
            bit=[c[1] for c in drf_cells],
            lost_value=draw(st.lists(
                st.integers(0, 1), min_size=n, max_size=n)),
            drv=draw(st.lists(
                st.sampled_from([0.03, 0.08, 0.15, 0.40]),
                min_size=n, max_size=n)),
            min_ds_time=draw(st.lists(
                st.sampled_from([0.0, 5e-4, 2e-3, 10.0]),
                min_size=n, max_size=n)),
        )
    ppg = draw(st.none() | st.integers(0, 3 * n_words))
    background = draw(st.none() | st.integers(0, (1 << word_bits) - 1))
    vddcc = draw(st.sampled_from([0.02, 0.06, 0.12]))
    return dict(
        n_words=n_words, word_bits=word_bits, safs=safs, tfs=tfs,
        drf=drf, ppg=ppg, background=background, vddcc=vddcc,
    )


class TestPropertyEquivalence:
    @settings(max_examples=60, deadline=None)
    @given(plan=_fault_plan())
    def test_vectorized_equals_scalar_cell_by_cell(self, plan):
        config = SRAMConfig(n_words=plan["n_words"], word_bits=plan["word_bits"])

        def build():
            m = LowPowerSRAM(config)
            for (addr, bit), value in plan["safs"]:
                m.inject(StuckAtFault(addr, bit, value))
            for (addr, bit), rising in plan["tfs"]:
                m.inject(TransitionFault(addr, bit, rising=rising))
            if plan["drf"] is not None:
                m.inject(DataRetentionFault(**plan["drf"]))
            if plan["ppg"] is not None:
                m.inject(PeripheralPowerGatingFault(recovery_ops=plan["ppg"]))
            return m

        _assert_equivalent(
            march_m_lz(), build,
            vddcc_for_sleep=lambda i: plan["vddcc"],
            background=plan["background"],
        )
