"""EKV MOSFET model: regimes, derivatives, temperature, corners."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.devices import CORNERS, MosfetModel, nmos_params, pmos_params

TT = CORNERS["typical"]


def _nmos(temp_c=25.0, corner=TT, **over):
    return MosfetModel(nmos_params("mn", 200e-9, **over), corner, temp_c)


def _pmos(temp_c=25.0, corner=TT, **over):
    return MosfetModel(pmos_params("mp", 200e-9, **over), corner, temp_c)


class TestParamValidation:
    def test_polarity_checked(self):
        with pytest.raises(ValueError, match="polarity"):
            nmos_params("x", 1e-7).__class__(
                name="x", polarity="z", w=1e-7, l=4e-8
            )

    def test_geometry_checked(self):
        with pytest.raises(ValueError, match="positive"):
            nmos_params("x", -1e-7)

    def test_vth_offset(self):
        p = nmos_params("x", 1e-7)
        assert p.with_vth_offset(-0.1).vth == pytest.approx(p.vth - 0.1)

    def test_width_scaling(self):
        p = nmos_params("x", 1e-7)
        assert p.scaled(3.0).w == pytest.approx(3e-7)


class TestOperatingRegimes:
    def test_saturation_square_law(self):
        m = _nmos()
        i1 = m.ids_value(0.9, 1.1, 0.0)
        i2 = m.ids_value(1.1, 1.1, 0.0)
        # Stronger gate drive, more current; rough square-law growth.
        ratio = i2 / i1
        expected = ((1.1 - m.vth_eff) / (0.9 - m.vth_eff)) ** 2
        assert ratio == pytest.approx(expected, rel=0.25)

    def test_subthreshold_exponential(self):
        m = _nmos()
        i1 = m.ids_value(0.20, 1.1, 0.0)
        i2 = m.ids_value(0.30, 1.1, 0.0)
        # One subthreshold slope-factor decade step.
        expected = np.exp(0.1 / (m.n * m.phi_t))
        assert i2 / i1 == pytest.approx(expected, rel=0.12)

    def test_off_leakage_positive(self):
        m = _nmos()
        leak = m.ids_value(0.0, 1.1, 0.0)
        assert 0 < leak < 1e-9

    def test_zero_vds_zero_current(self):
        m = _nmos()
        assert m.ids_value(1.0, 0.5, 0.5) == pytest.approx(0.0, abs=1e-15)

    def test_drain_source_antisymmetry(self):
        m = _nmos()
        forward = m.ids_value(0.8, 0.6, 0.2)
        reverse = m.ids_value(0.8, 0.2, 0.6)
        # Swapping drain and source flips sign; CLM breaks exactness mildly.
        assert reverse == pytest.approx(-forward, rel=0.2)
        assert reverse < 0

    def test_pmos_mirrors_nmos(self):
        mn, mp = _nmos(), _pmos()
        i_n = mn.ids_value(1.1, 1.1, 0.0)
        # PMOS biased complementarily: gate 0, drain 0, source 1.1.
        i_p = mp.ids_value(0.0, 0.0, 1.1)
        assert i_p < 0  # conducts source -> drain
        # kp ratio ~2.5 between the default cards.
        assert abs(i_p) == pytest.approx(i_n * 120 / 300, rel=0.15)


class TestDerivatives:
    @settings(max_examples=60, deadline=None)
    @given(
        vg=st.floats(0.0, 1.2),
        vd=st.floats(0.0, 1.2),
        vs=st.floats(0.0, 1.2),
        polarity=st.sampled_from(["n", "p"]),
    )
    def test_analytic_matches_numeric(self, vg, vd, vs, polarity):
        m = _nmos() if polarity == "n" else _pmos()
        i, gg, gd, gs = m.ids(vg, vd, vs)
        h = 1e-7

        def num(f_plus, f_minus):
            return (f_plus - f_minus) / (2 * h)

        gg_n = num(m.ids(vg + h, vd, vs)[0], m.ids(vg - h, vd, vs)[0])
        gd_n = num(m.ids(vg, vd + h, vs)[0], m.ids(vg, vd - h, vs)[0])
        gs_n = num(m.ids(vg, vd, vs + h)[0], m.ids(vg, vd, vs - h)[0])
        scale = max(abs(gg_n), abs(gd_n), abs(gs_n), 1e-12)
        assert gg == pytest.approx(gg_n, abs=2e-4 * scale + 1e-13)
        assert gd == pytest.approx(gd_n, abs=2e-4 * scale + 1e-13)
        assert gs == pytest.approx(gs_n, abs=2e-4 * scale + 1e-13)

    def test_terminal_derivative_sum_zero(self):
        """KCL: shifting all terminals together changes nothing."""
        m = _nmos()
        _i, gg, gd, gs = m.ids(0.7, 0.4, 0.1)
        assert gg + gd + gs == pytest.approx(0.0, abs=1e-9)


class TestTemperatureAndCorners:
    def test_leakage_grows_with_temperature(self):
        cold = _nmos(-30.0).ids_value(0.0, 1.1, 0.0)
        room = _nmos(25.0).ids_value(0.0, 1.1, 0.0)
        hot = _nmos(125.0).ids_value(0.0, 1.1, 0.0)
        assert cold < room < hot
        assert hot / room > 50  # orders of magnitude, as in silicon

    def test_drive_degrades_with_temperature(self):
        room = _nmos(25.0).ids_value(1.1, 1.1, 0.0)
        hot = _nmos(125.0).ids_value(1.1, 1.1, 0.0)
        assert hot < room  # mobility loss dominates at high overdrive

    def test_fast_corner_lowers_vth(self):
        fast = MosfetModel(nmos_params("m", 1e-7), CORNERS["fast"], 25.0)
        slow = MosfetModel(nmos_params("m", 1e-7), CORNERS["slow"], 25.0)
        assert fast.vth_eff < slow.vth_eff

    def test_fs_corner_is_asymmetric(self):
        fs = CORNERS["fs"]
        n = MosfetModel(nmos_params("m", 1e-7), fs, 25.0)
        p = MosfetModel(pmos_params("m", 1e-7), fs, 25.0)
        tt_n = MosfetModel(nmos_params("m", 1e-7), TT, 25.0)
        tt_p = MosfetModel(pmos_params("m", 1e-7), TT, 25.0)
        assert n.vth_eff < tt_n.vth_eff  # fast NMOS
        assert p.vth_eff > tt_p.vth_eff  # slow PMOS

    def test_vectorised_evaluation(self):
        m = _nmos()
        vg = np.linspace(0, 1.1, 10)
        i = m.ids_value(vg, 1.1, 0.0)
        assert i.shape == (10,)
        assert np.all(np.diff(i) > 0)  # monotone in gate voltage

    def test_gate_capacitance_scales_with_area(self):
        small = _nmos().gate_capacitance()
        big = MosfetModel(nmos_params("m", 400e-9), TT, 25.0).gate_capacitance()
        assert big == pytest.approx(2 * small, rel=1e-9)
