"""Standard March test definitions."""

import pytest

from repro.march import (
    march_c_minus,
    march_lz,
    march_m_lz,
    march_ss,
    mats_plus,
    standard_tests,
)
from repro.march.dsl import DSM, WUP, MarchElement


class TestMarchMLZ:
    def test_paper_length_5n_plus_4(self):
        t = march_m_lz()
        assert t.complexity() == "5N+4"
        assert t.length(4096) == 5 * 4096 + 4

    def test_structure_matches_paper(self):
        """{ u(w1); DSM; WUP; u(r1,w0,r0); DSM; WUP; u(r0) }"""
        t = march_m_lz()
        kinds = [type(el).__name__ for el in t.elements]
        assert kinds == [
            "MarchElement", "DSM", "WUP", "MarchElement", "DSM", "WUP", "MarchElement",
        ]
        me1, me4, me7 = t.elements[0], t.elements[3], t.elements[6]
        assert str(me1) == "u(w1)"
        assert str(me4) == "u(r1,w0,r0)"
        assert str(me7) == "u(r0)"

    def test_ds_time_parameter(self):
        t = march_m_lz(ds_time=5e-3)
        assert t.ds_intervals() == [5e-3, 5e-3]

    def test_extends_march_lz(self):
        """March m-LZ = March LZ + second sleep cycle + final r0."""
        lz = march_lz()
        mlz = march_m_lz()
        assert [str(e) for e in mlz.elements[:4]] == [str(e) for e in lz.elements]


class TestClassicLengths:
    @pytest.mark.parametrize(
        "factory, complexity",
        [
            (mats_plus, "5N"),
            (march_c_minus, "10N"),
            (march_ss, "22N"),
            (march_lz, "4N+2"),
        ],
    )
    def test_lengths(self, factory, complexity):
        assert factory().complexity() == complexity


class TestLibrary:
    def test_standard_tests_keys(self):
        tests = standard_tests()
        assert set(tests) == {
            "MATS+", "March C-", "March SS", "March LZ", "March m-LZ"
        }

    def test_all_start_with_initialising_write(self):
        for test in standard_tests().values():
            first = test.elements[0]
            assert isinstance(first, MarchElement)
            assert first.ops[0].kind == "w"
