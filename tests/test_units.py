"""Units, formatting and parsing helpers."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.units import (
    OPEN_LINE_OHMS,
    format_eng,
    millivolts,
    parse_eng,
    thermal_voltage,
)


class TestThermalVoltage:
    def test_room_temperature(self):
        assert thermal_voltage(25.0) == pytest.approx(0.0257, abs=2e-4)

    def test_increases_with_temperature(self):
        assert thermal_voltage(125.0) > thermal_voltage(25.0) > thermal_voltage(-30.0)

    def test_hot_value(self):
        assert thermal_voltage(125.0) == pytest.approx(0.0343, abs=3e-4)


class TestFormatEng:
    @pytest.mark.parametrize(
        "value, expected",
        [
            (9760, "9.76K"),
            (2.36e6, "2.36M"),
            (976.56, "976.56"),
            (97.65e3, "97.65K"),
            (0, "0"),
            (1e-3, "1.00m"),
        ],
    )
    def test_paper_style_values(self, value, expected):
        assert format_eng(value) == expected

    def test_open_line(self):
        assert format_eng(math.inf) == "> 500M"
        assert format_eng(OPEN_LINE_OHMS * 2) == "> 500M"
        assert format_eng(None) == "> 500M"

    def test_unit_suffix(self):
        assert format_eng(4.7e3, unit="Ohm") == "4.70KOhm"

    def test_negative(self):
        assert format_eng(-2200) == "-2.20K"


class TestParseEng:
    def test_roundtrip_paper_values(self):
        for text, value in [("9.76K", 9760), ("2.36M", 2.36e6), ("976.56", 976.56)]:
            assert parse_eng(text) == pytest.approx(value)

    def test_open_line(self):
        assert parse_eng("> 500M") == math.inf

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            parse_eng("   ")

    @given(st.floats(min_value=1e-9, max_value=4.9e8))
    def test_roundtrip_property(self, value):
        parsed = parse_eng(format_eng(value, digits=9))
        assert parsed == pytest.approx(value, rel=1e-6)


class TestMillivolts:
    def test_formats(self):
        assert millivolts(0.73) == "730mV"
        assert millivolts(0.0604, digits=1) == "60.4mV"
