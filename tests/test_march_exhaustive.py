"""Exhaustive-position and randomized March-engine properties.

March-test theory makes *universal* claims ("March C- detects every
unlinked SAF/TF"), so spot checks at hand-picked cells are weak evidence.
These tests sweep every cell position of a small array, and fuzz random
march sequences for the engine-level invariant that a fault-free memory
can never fail.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.march import march_c_minus, march_m_lz, run_march
from repro.march.dsl import AddressOrder, DSM, MarchTest, WUP, element, read, write
from repro.sram import LowPowerSRAM, SRAMConfig, StuckAtFault, TransitionFault

SMALL = SRAMConfig(n_words=8, word_bits=4)


class TestExhaustivePositions:
    def test_march_c_minus_detects_every_saf(self):
        for addr in range(SMALL.n_words):
            for bit in range(SMALL.word_bits):
                for value in (0, 1):
                    m = LowPowerSRAM(SMALL)
                    m.inject(StuckAtFault(addr, bit, value))
                    result = run_march(march_c_minus(), m)
                    assert result.detected, f"SAF{value}@{addr}.{bit} escaped"
                    assert (addr, bit) in result.failing_cells()

    def test_march_c_minus_detects_every_tf(self):
        for addr in range(SMALL.n_words):
            for rising in (True, False):
                m = LowPowerSRAM(SMALL)
                m.inject(TransitionFault(addr, 2, rising=rising))
                assert run_march(march_c_minus(), m).detected, (addr, rising)

    def test_march_m_lz_detects_every_saf(self):
        """The retention test keeps full stuck-at coverage."""
        for addr in range(SMALL.n_words):
            for value in (0, 1):
                m = LowPowerSRAM(SMALL)
                m.inject(StuckAtFault(addr, 0, value))
                assert run_march(march_m_lz(), m).detected


# Strategy: structurally-valid march sequences whose reads always follow a
# defining write of the same value (so they are fault-free-consistent).
def _consistent_marches():
    @st.composite
    def build(draw):
        elements = [element(AddressOrder.ANY, write(0))]
        current = 0
        n = draw(st.integers(1, 5))
        for _ in range(n):
            kind = draw(st.sampled_from(["rw", "sleep", "read"]))
            if kind == "sleep":
                elements.append(DSM(1e-6))
                elements.append(WUP())
            elif kind == "read":
                order = draw(st.sampled_from(list(AddressOrder)))
                elements.append(element(order, read(current)))
            else:
                order = draw(st.sampled_from(list(AddressOrder)))
                new = 1 - current
                elements.append(element(order, read(current), write(new), read(new)))
                current = new
        return MarchTest("fuzz", tuple(elements))

    return build()


class TestRandomizedEngine:
    @settings(max_examples=40, deadline=None)
    @given(_consistent_marches())
    def test_fault_free_memory_never_fails(self, test):
        result = run_march(test, LowPowerSRAM(SMALL))
        assert result.passed

    @settings(max_examples=20, deadline=None)
    @given(_consistent_marches(), st.integers(0, 7), st.integers(0, 3))
    def test_operation_count_is_exact(self, test, _a, _b):
        result = run_march(test, LowPowerSRAM(SMALL))
        assert result.operations == test.length(SMALL.n_words)
