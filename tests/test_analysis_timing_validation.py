"""Transient-engine validation of the timing layer, and the DS-time sweep."""

import math

import pytest

from repro.analysis.ds_time import ds_time_sweep, render_ds_time
from repro.analysis.transient_validation import (
    gate_settling_comparison,
    max_relative_error,
    rail_discharge_comparison,
)
from repro.cell.retention import flip_time
from repro.devices.pvt import PVT
from repro.regulator.defects import TimingMode


class TestRailDischarge:
    def test_hot_rail_agreement(self):
        """Semi-analytic decay within a few percent of backward Euler."""
        pvt = PVT("fs", 1.0, 125.0)
        points = rail_discharge_comparison(pvt, n_points=8)
        assert max_relative_error(points) < 0.08

    def test_trajectory_decays(self):
        pvt = PVT("typical", 1.1, 125.0)
        points = rail_discharge_comparison(pvt, n_points=6)
        simulated = [p.simulated for p in points]
        assert simulated == sorted(simulated, reverse=True)
        assert simulated[0] < 1.1


class TestGateSettling:
    @pytest.mark.parametrize("mode", [TimingMode.ACTIVATION_DELAY, TimingMode.UNDERSHOOT])
    def test_rc_settle_agreement(self, mode):
        point = gate_settling_comparison(50e6, mode)
        assert point.simulated is not None
        assert point.simulated == pytest.approx(point.analytic, rel=0.10)


class TestDsTimeSweep:
    def test_deep_deficit_detected_quickly(self):
        result = ds_time_sweep(vddcc=0.45, drv=0.70)
        assert result.min_effective_ds_time <= 1e-3

    def test_near_drv_needs_longer_dwell(self):
        """The paper's point: marginal supplies need the full DS time."""
        deep = ds_time_sweep(vddcc=0.45, drv=0.70)
        marginal = ds_time_sweep(vddcc=0.693, drv=0.70)
        assert marginal.min_effective_ds_time > deep.min_effective_ds_time

    def test_sweep_is_monotone(self):
        """Once a dwell detects, every longer dwell detects."""
        result = ds_time_sweep(vddcc=0.60, drv=0.70)
        flags = [p.detected for p in result.points]
        first = flags.index(True) if True in flags else len(flags)
        assert all(flags[first:])

    def test_threshold_matches_flip_time(self):
        result = ds_time_sweep(vddcc=0.60, drv=0.70)
        t_flip = flip_time(0.60, 0.70)
        for p in result.points:
            assert p.detected == (p.ds_time >= t_flip)

    def test_above_drv_never_detected(self):
        result = ds_time_sweep(vddcc=0.75, drv=0.70)
        assert math.isinf(result.min_effective_ds_time)

    def test_render(self):
        results = [ds_time_sweep(vddcc=v, drv=0.70) for v in (0.45, 0.69)]
        text = render_ds_time(results)
        assert "FAIL" in text and "t_flip" in text
        assert render_ds_time([]) == "(no results)"
