"""Fig. 4 sweep: per-transistor DRV sensitivity."""

import pytest

from repro.analysis.figure4 import figure4_sweep, render_figure4, series
from repro.devices.pvt import PVT

TINY_GRID = [PVT("fs", 1.1, 125.0)]
SIGMAS = (-4.0, 0.0, 4.0)


@pytest.fixture(scope="module")
def points():
    return figure4_sweep(sigmas=SIGMAS, pvt_grid=TINY_GRID)


class TestSweep:
    def test_point_count(self, points):
        assert len(points) == 6 * len(SIGMAS)

    def test_zero_sigma_is_symmetric_floor(self, points):
        zeros = [p for p in points if p.sigma == 0.0]
        reference = zeros[0].drv_ds1
        for p in zeros:
            assert p.drv_ds1 == pytest.approx(reference, abs=1e-6)
            assert p.drv_ds0 == pytest.approx(reference, abs=1e-6)

    def test_observation_1_signs(self, points):
        """Negative variation on MNcc1 degrades DRV_DS1 (paper obs. 1)."""
        _x, y = series(points, "mncc1", "ds1")
        assert y[0] > y[1]  # -4 sigma worse than 0
        assert y[0] > y[2]  # and worse than +4 sigma

    def test_observation_2_mirror(self, points):
        """Positive variation on MNcc1 degrades DRV_DS0 instead."""
        _x, y0 = series(points, "mncc1", "ds0")
        assert y0[2] > y0[1]

    def test_inverter_dominates_pass_gate(self, points):
        _x, inv = series(points, "mncc1", "ds1")
        _x, pas = series(points, "mncc3", "ds1")
        assert inv[0] > pas[0]

    def test_pass_gate_not_negligible(self, points):
        """Paper: pass-gate impact is smaller but cannot be neglected."""
        _x, pas = series(points, "mncc3", "ds1")
        assert pas[0] > pas[1] + 0.005

    def test_pmos_polarity_convention(self, points):
        """Negative (weaker) MPcc1 hurts stored '1' retention."""
        _x, y = series(points, "mpcc1", "ds1")
        assert y[0] > y[1]

    def test_render(self, points):
        text = render_figure4(points, "ds1")
        assert "DRV_DS1" in text and "mncc4" in text
        text0 = render_figure4(points, "ds0")
        assert "DRV_DS0" in text0
