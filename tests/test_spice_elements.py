"""Element stamps and netlist construction."""

import numpy as np
import pytest

from repro.devices import CORNERS, MosfetModel, nmos_params, pmos_params
from repro.spice import Circuit, Resistor, solve_dc


class TestCircuitConstruction:
    def test_ground_aliases(self):
        c = Circuit()
        assert c.node("0") == 0
        assert c.node("gnd") == 0
        assert c.node("GND") == 0

    def test_node_interning(self):
        c = Circuit()
        a = c.node("a")
        assert c.node("a") == a
        assert c.node("b") != a
        assert c.node_count == 3  # ground + a + b

    def test_duplicate_element_name_rejected(self):
        c = Circuit()
        c.resistor("r1", "a", "0", 1e3)
        with pytest.raises(ValueError, match="duplicate"):
            c.resistor("r1", "b", "0", 1e3)

    def test_element_lookup(self):
        c = Circuit()
        r = c.resistor("r1", "a", "0", 1e3)
        assert c.element("r1") is r
        with pytest.raises(KeyError):
            c.element("nope")

    def test_invalid_resistor(self):
        with pytest.raises(ValueError, match="positive"):
            Resistor("r", 1, 0, -5.0)

    def test_unknown_count_includes_branches(self):
        c = Circuit()
        c.vsource("v1", "a", "0", 1.0)
        c.resistor("r1", "a", "b", 1e3)
        c.resistor("r2", "b", "0", 1e3)
        # nodes a, b plus one branch current
        assert c.unknown_count() == 3

    def test_describe_contains_elements(self):
        c = Circuit("demo")
        c.vsource("v1", "a", "0", 1.5)
        c.resistor("r1", "a", "0", 2e3)
        text = c.describe()
        assert "demo" in text
        assert "v1" in text and "r1" in text


class TestLinearStamps:
    def test_divider(self):
        c = Circuit()
        c.vsource("vin", "in", "0", 3.0)
        c.resistor("r1", "in", "mid", 2e3)
        c.resistor("r2", "mid", "0", 1e3)
        s = solve_dc(c)
        assert s.voltage("mid") == pytest.approx(1.0, rel=1e-9)
        # branch current flows plus -> minus through the source: -1 mA here.
        assert s.branch_current("vin") == pytest.approx(-1e-3, rel=1e-6)

    def test_current_source_into_resistor(self):
        c = Circuit()
        c.isource("i1", "0", "n", 1e-3)  # 1 mA pushed into node n
        c.resistor("r1", "n", "0", 1e3)
        s = solve_dc(c)
        assert s.voltage("n") == pytest.approx(1.0, rel=1e-6)

    def test_capacitor_open_in_dc(self):
        c = Circuit()
        c.vsource("vin", "in", "0", 1.0)
        c.resistor("r1", "in", "out", 1e3)
        c.capacitor("c1", "out", "0", 1e-12)
        s = solve_dc(c)
        # No DC path through the capacitor: no drop across r1 beyond the
        # gmin shunt's leak, which is exactly 1e-9 relative here — the
        # tolerance needs ulp headroom on top of that floor.
        assert s.voltage("out") == pytest.approx(1.0, rel=2e-9)

    def test_voltages_map(self):
        c = Circuit()
        c.vsource("v", "a", "0", 2.0)
        s = solve_dc(c)
        volts = s.voltages()
        assert volts["a"] == pytest.approx(2.0)
        assert volts["0"] == 0.0


class TestMosfetStamp:
    def test_kcl_balance_in_inverter(self):
        """Drain current leaving VDD equals current entering ground."""
        c = Circuit()
        c.vsource("vdd", "vdd", "0", 1.1)
        c.vsource("vin", "in", "0", 0.55)
        corner = CORNERS["typical"]
        c.mosfet("mp", "out", "in", "vdd", MosfetModel(pmos_params("mp", 120e-9), corner, 25.0))
        c.mosfet("mn", "out", "in", "0", MosfetModel(nmos_params("mn", 120e-9), corner, 25.0))
        s = solve_dc(c)
        v_out = s.voltage("out")
        assert 0.0 < v_out < 1.1

    def test_diode_connected_shared_node_derivatives(self):
        """Gate tied to drain: stamps must accumulate, not overwrite."""
        c = Circuit()
        c.vsource("vdd", "vdd", "0", 1.1)
        c.resistor("r", "vdd", "d", 50e3)
        corner = CORNERS["typical"]
        c.mosfet("mn", "d", "d", "0", MosfetModel(nmos_params("mn", 1e-6), corner, 25.0))
        s = solve_dc(c)
        v = s.voltage("d")
        # Diode-connected NMOS settles a bit above threshold.
        assert 0.4 < v < 0.8

    def test_multiplier_scales_current(self):
        corner = CORNERS["typical"]
        model = MosfetModel(nmos_params("mn", 1e-6), corner, 25.0)

        def solve_with_m(m):
            c = Circuit()
            c.vsource("vdd", "vdd", "0", 1.1)
            c.resistor("r", "vdd", "d", 10e3)
            c.mosfet("mn", "d", "vdd", "0", model, multiplier=m)
            return solve_dc(c).voltage("d")

        assert solve_with_m(4.0) < solve_with_m(1.0)

    def test_gate_leak_creates_gate_current(self):
        corner = CORNERS["typical"]
        leaky = MosfetModel(
            pmos_params("mp", 100e-6, 100e-9, gate_leak_density=1e5), corner, 25.0
        )
        assert leaky.gate_leak_g > 0
        c = Circuit()
        c.vsource("vdd", "vdd", "0", 1.0)
        c.resistor("rg", "g", "0", 1e6)  # gate pulled low through a resistor
        c.mosfet("mp", "0", "g", "vdd", leaky)
        s = solve_dc(c)
        # Gate leakage from the source (VDD) lifts the gate above 0.
        assert s.voltage("g") > 0.05
