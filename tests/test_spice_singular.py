"""Singular / ill-conditioned netlists: all backends fail the same way.

The solver contract for an unsolvable system is a
:class:`~repro.spice.dc.ConvergenceError` carrying the full strategy
trail in ``.context`` - never a raw ``numpy.linalg.LinAlgError`` (dense
backends) or SuperLU ``RuntimeError`` (sparse backend).  The reference
behavior was pinned first (see each case's comment) and the compiled and
sparse backends must conform to it exactly:

* netlists whose MNA matrix is *exactly* singular (conflicting or
  redundant parallel voltage sources produce identical branch rows) make
  every Newton strategy observe a singular factor and the chain exhausts
  with a trail naming each strategy tried;
* netlists that are only singular *before* regularisation (floating
  nodes, current-source-only nodes) are rescued by the gmin shunt and
  converge to the same operating point on every backend - the suite pins
  that they converge rather than assuming they fail.

The sparse backend runs with the dense-delegation threshold forced to
zero so the SuperLU error path itself is what gets exercised.
"""

import numpy as np
import pytest

from repro.spice import (
    BACKENDS,
    Circuit,
    ConvergenceError,
    solve_dc,
    solve_dc_batch,
    sparse_threshold,
)
from repro.verify.tolerances import DC_BACKEND_AGREEMENT_V


def _conflicting_vsources():
    """Two parallel voltage sources demanding different node voltages.

    Their branch rows are identical up to the rhs -> the MNA matrix is
    exactly rank-deficient at every gmin and source scale; no strategy
    can converge.  (Pinned reference behavior: ConvergenceError after the
    full chain.)
    """
    circuit = Circuit("conflicting-vsources")
    circuit.vsource("v1", "a", "0", 1.0)
    circuit.vsource("v2", "a", "0", 0.5)
    circuit.resistor("r", "a", "0", 1e3)
    return circuit


def _redundant_vsources():
    """Two identical parallel sources: consistent rhs, still singular.

    The branch-current split between them is indeterminate, so LU hits a
    zero pivot even though node voltages would be well-defined.  (Pinned
    reference behavior: ConvergenceError - the solver does not guess a
    split.)
    """
    circuit = Circuit("redundant-vsources")
    circuit.vsource("v1", "a", "0", 1.0)
    circuit.vsource("v2", "a", "0", 1.0)
    circuit.resistor("r", "a", "0", 1e3)
    return circuit


def _floating_node():
    """A node with no DC path to ground (capacitor-only connection).

    Without regularisation the node's KCL row is all-zero; the gmin shunt
    makes it solvable and parks the node at 0 V.  (Pinned reference
    behavior: converges.)
    """
    circuit = Circuit("floating-node")
    circuit.vsource("v1", "a", "0", 1.0)
    circuit.resistor("r1", "a", "b", 1e3)
    circuit.capacitor("cf", "c", "b", 1e-12)
    return circuit


def _isource_node():
    """A node fed only by current sources (zero diagonal before gmin).

    The opposing sources cancel; only the gmin shunt gives the node
    voltage a unique value.  (Pinned reference behavior: converges.)
    """
    circuit = Circuit("isource-node")
    circuit.isource("i1", "0", "a", 1e-3)
    circuit.isource("i2", "a", "0", 1e-3)
    circuit.resistor("r", "a", "b", 1e3)
    circuit.vsource("v", "b", "0", 0.5)
    return circuit


def _solve(make_circuit, backend):
    with sparse_threshold(0):
        return solve_dc(make_circuit(), backend=backend)


class TestExactlySingular:
    """Rank-deficient netlists exhaust the strategy chain identically."""

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize(
        "make_circuit", [_conflicting_vsources, _redundant_vsources],
        ids=["conflicting", "redundant"],
    )
    def test_raises_convergence_error_with_strategy_trail(
        self, make_circuit, backend
    ):
        with pytest.raises(ConvergenceError) as excinfo:
            _solve(make_circuit, backend)
        error = excinfo.value
        strategies = error.context.get("strategies")
        assert strategies, "failure must carry the machine-readable trail"
        # The full chain ran: gmin stepping and source stepping were tried
        # before giving up, and the message names them for a human.
        joined = " ".join(strategies)
        assert "gmin-step" in joined and "source-step" in joined
        assert "tried" in str(error)
        assert error.context.get("vstep_limit")
        assert "total_iterations" in error.context

    @pytest.mark.parametrize(
        "make_circuit", [_conflicting_vsources, _redundant_vsources],
        ids=["conflicting", "redundant"],
    )
    def test_failure_trail_is_identical_across_backends(self, make_circuit):
        trails = {}
        for backend in BACKENDS:
            with pytest.raises(ConvergenceError) as excinfo:
                _solve(make_circuit, backend)
            trails[backend] = excinfo.value.context["strategies"]
        reference = trails["reference"]
        for backend, trail in trails.items():
            assert trail == reference, (
                f"{backend} diverged from the pinned reference trail"
            )

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_no_raw_linear_algebra_exceptions(self, backend):
        """Neither LinAlgError nor SuperLU's RuntimeError may escape."""
        try:
            _solve(_conflicting_vsources, backend)
        except ConvergenceError:
            pass
        # Any other exception type propagates and fails the test.

    def test_singular_point_in_a_batch_sweep_fails_cleanly(self):
        """A batched sweep over a singular netlist raises ConvergenceError
        (from the per-point fallback chain), not a raw scipy error."""
        for backend in ("compiled", "sparse"):
            with sparse_threshold(0):
                with pytest.raises(ConvergenceError):
                    solve_dc_batch(
                        _conflicting_vsources(), "v1", [0.8, 1.0, 1.2],
                        backend=backend,
                    )


class TestGminRescued:
    """Only-singular-before-gmin netlists converge identically instead."""

    @pytest.mark.parametrize(
        "make_circuit", [_floating_node, _isource_node],
        ids=["floating-node", "isource-node"],
    )
    def test_all_backends_converge_to_the_same_point(self, make_circuit):
        solutions = {
            backend: _solve(make_circuit, backend) for backend in BACKENDS
        }
        reference = solutions["reference"]
        n_nodes = make_circuit().node_count - 1
        for backend, solution in solutions.items():
            diff = np.abs(solution.x[:n_nodes] - reference.x[:n_nodes])
            assert diff.max() <= DC_BACKEND_AGREEMENT_V, backend
