"""Backward-Euler transient analysis."""

import math

import numpy as np
import pytest

from repro.spice import Circuit, solve_transient


def _rc(r=1e3, c=1e-9, v=1.0):
    circuit = Circuit("rc")
    circuit.vsource("vin", "in", "0", v)
    circuit.resistor("r", "in", "out", r)
    circuit.capacitor("c", "out", "0", c)
    return circuit


class TestRCCharging:
    def test_matches_analytic_exponential(self):
        tau = 1e-6  # 1k * 1n
        circuit = _rc()
        n = circuit.unknown_count()
        x0 = np.zeros(n)  # capacitor initially discharged
        result = solve_transient(circuit, t_stop=5 * tau, dt=tau / 50, x0=x0)
        wave = result.voltage("out")
        for t, v in zip(result.times, wave):
            expected = 1.0 - math.exp(-t / tau)
            assert v == pytest.approx(expected, abs=0.02)

    def test_final_value(self):
        circuit = _rc()
        x0 = np.zeros(circuit.unknown_count())
        result = solve_transient(circuit, t_stop=10e-6, dt=0.1e-6, x0=x0)
        assert result.final().voltage("out") == pytest.approx(1.0, abs=1e-3)

    def test_settling_time(self):
        tau = 1e-6
        circuit = _rc()
        x0 = np.zeros(circuit.unknown_count())
        result = solve_transient(circuit, t_stop=8 * tau, dt=tau / 25, x0=x0)
        settle = result.settling_time("out", target=1.0, tolerance=0.05)
        # v reaches 95% at 3 tau.
        assert settle == pytest.approx(3 * tau, rel=0.15)

    def test_settling_time_none_when_never_settles(self):
        circuit = _rc()
        x0 = np.zeros(circuit.unknown_count())
        result = solve_transient(circuit, t_stop=0.5e-6, dt=0.05e-6, x0=x0)
        assert result.settling_time("out", target=1.0, tolerance=0.01) is None


class TestStimulus:
    def test_pre_step_toggles_source(self):
        circuit = _rc()
        x0 = np.zeros(circuit.unknown_count())
        vin = circuit.element("vin")

        def stimulus(t):
            vin.voltage = 1.0 if t < 5e-6 else 0.0

        result = solve_transient(circuit, t_stop=10e-6, dt=0.1e-6, x0=x0, pre_step=stimulus)
        wave = result.voltage("out")
        mid = np.searchsorted(result.times, 5e-6)
        assert wave[mid - 1] > 0.9  # charged
        assert result.final().voltage("out") < 0.05  # discharged again


class TestValidation:
    def test_rejects_bad_timestep(self):
        circuit = _rc()
        with pytest.raises(ValueError):
            solve_transient(circuit, t_stop=0.0, dt=1e-9)
        with pytest.raises(ValueError):
            solve_transient(circuit, t_stop=1e-6, dt=-1.0)

    def test_ground_waveform_is_zero(self):
        circuit = _rc()
        x0 = np.zeros(circuit.unknown_count())
        result = solve_transient(circuit, t_stop=1e-6, dt=0.2e-6, x0=x0)
        assert np.all(result.voltage("0") == 0.0)
