"""DRF_DS model and end-to-end scenarios."""

import pytest

from repro.core.drf import DRF_DS, DRFScenario
from repro.devices import CellVariation
from repro.devices.pvt import PVT
from repro.march import march_lz, march_m_lz
from repro.regulator import DEFECTS, VrefSelect

HOT = PVT("fs", 1.0, 125.0)
CS2 = CellVariation(mpcc1=-3, mncc1=-3)


def _scenario(**overrides):
    defaults = dict(
        pvt=HOT,
        vrefsel=VrefSelect.VREF74,
        variation=CS2,
        weak_cell_locations=((3, 2),),
    )
    defaults.update(overrides)
    return DRFScenario(**defaults)


class TestDRFRecord:
    def test_presence(self):
        assert DRF_DS(vddcc=0.5, victims=((0, 0),)).is_present
        assert not DRF_DS(vddcc=0.77, victims=()).is_present


class TestFaultFreeScenario:
    def test_no_fault_without_defect(self):
        scenario = _scenario()
        fault = scenario.fault()
        assert not fault.is_present
        assert fault.vddcc > 0.70

    def test_march_m_lz_passes(self):
        assert _scenario().run_test(march_m_lz()).passed

    def test_weak_drv_pair(self):
        drv1, drv0 = _scenario().weak_drv
        assert drv1 > 0.25  # degraded state
        assert drv0 < 0.1   # favoured state retains to the floor


class TestDefectiveScenario:
    def test_large_defect_causes_fault(self):
        scenario = _scenario(defect=DEFECTS[1], resistance=2e7)
        fault = scenario.fault()
        assert fault.is_present
        assert (3, 2) in fault.victims
        assert fault.vddcc < 0.60

    def test_march_m_lz_detects(self):
        scenario = _scenario(defect=DEFECTS[1], resistance=2e7)
        result = scenario.run_test(march_m_lz())
        assert result.detected

    def test_march_lz_misses_zero_side(self):
        """The mirrored (CSx-0) scenario escapes March LZ."""
        scenario = _scenario(
            variation=CS2.mirrored(), defect=DEFECTS[1], resistance=2e7
        )
        assert scenario.run_test(march_lz()).passed
        assert scenario.run_test(march_m_lz()).detected

    def test_small_defect_is_harmless(self):
        scenario = _scenario(defect=DEFECTS[1], resistance=10.0)
        assert not scenario.fault().is_present
        assert scenario.run_test(march_m_lz()).passed

    def test_vddcc_cached(self):
        scenario = _scenario(defect=DEFECTS[1], resistance=2e7)
        assert scenario.vddcc == scenario.vddcc  # cached_property: one solve
