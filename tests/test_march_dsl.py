"""March DSL: operations, elements, length accounting."""

import pytest
from hypothesis import given, strategies as st

from repro.march import (
    DSM,
    WUP,
    AddressOrder,
    MarchElement,
    MarchTest,
    read,
    write,
)
from repro.march.dsl import element


class TestOperations:
    def test_read_write_constructors(self):
        assert str(read(1)) == "r1"
        assert str(write(0)) == "w0"

    def test_validation(self):
        with pytest.raises(ValueError, match="kind"):
            read(1).__class__("x", 1)
        with pytest.raises(ValueError, match="value"):
            write(2)


class TestAddressOrders:
    def test_up(self):
        assert list(AddressOrder.UP.addresses(4)) == [0, 1, 2, 3]

    def test_down(self):
        assert list(AddressOrder.DOWN.addresses(4)) == [3, 2, 1, 0]

    def test_any_defaults_up(self):
        assert list(AddressOrder.ANY.addresses(3)) == [0, 1, 2]


class TestElements:
    def test_empty_element_rejected(self):
        with pytest.raises(ValueError):
            MarchElement(AddressOrder.UP, ())

    def test_rendering(self):
        el = element(AddressOrder.UP, read(1), write(0), read(0))
        assert str(el) == "u(r1,w0,r0)"
        assert str(DSM()) == "DSM"
        assert str(WUP()) == "WUP"


class TestMarchTest:
    def _test(self):
        return MarchTest(
            "demo",
            (
                element(AddressOrder.UP, write(1)),
                DSM(2e-3),
                WUP(),
                element(AddressOrder.DOWN, read(1), write(0)),
            ),
        )

    def test_length(self):
        t = self._test()
        assert t.length(100) == 3 * 100 + 2

    def test_complexity_string(self):
        assert self._test().complexity() == "3N+2"

    def test_complexity_without_constants(self):
        t = MarchTest("x", (element(AddressOrder.UP, write(0)),))
        assert t.complexity() == "1N"

    def test_ds_intervals(self):
        assert self._test().ds_intervals() == [2e-3]

    def test_str_rendering(self):
        text = str(self._test())
        assert text == "demo = { u(w1); DSM; WUP; d(r1,w0) }"

    @given(
        n_elements=st.integers(1, 5),
        ops_per_element=st.integers(1, 4),
        n_specials=st.integers(0, 4),
        n_words=st.integers(1, 4096),
    )
    def test_length_formula_property(self, n_elements, ops_per_element, n_specials, n_words):
        """length(N) == (ops per word) * N + (special ops), always."""
        elements = tuple(
            element(AddressOrder.UP, *[write(0)] * ops_per_element)
            for _ in range(n_elements)
        ) + tuple(DSM() for _ in range(n_specials))
        t = MarchTest("gen", elements)
        assert t.length(n_words) == n_elements * ops_per_element * n_words + n_specials
