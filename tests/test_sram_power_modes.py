"""Power-mode control FSM (Section II.A)."""

from repro.sram import PMControl, PowerMode


class TestDecoding:
    def test_default_is_active(self):
        assert PMControl().mode is PowerMode.ACT

    def test_pwron_low_wins(self):
        pm = PMControl()
        pm.set_inputs(sleep=True, pwron=False)
        assert pm.mode is PowerMode.PO
        pm.set_inputs(sleep=False, pwron=False)
        assert pm.mode is PowerMode.PO

    def test_sleep_selects_ds(self):
        pm = PMControl()
        assert pm.set_inputs(sleep=True, pwron=True) is PowerMode.DS
        assert pm.set_inputs(sleep=False, pwron=True) is PowerMode.ACT


class TestDerivedSignals:
    def test_regon_only_in_ds(self):
        pm = PMControl()
        assert not pm.regon
        pm.to_deep_sleep()
        assert pm.regon
        pm.to_power_off()
        assert not pm.regon

    def test_periphery_only_in_act(self):
        pm = PMControl()
        assert pm.periphery_powered
        pm.to_deep_sleep()
        assert not pm.periphery_powered

    def test_core_powered_in_act_and_ds(self):
        pm = PMControl()
        assert pm.core_powered
        pm.to_deep_sleep()
        assert pm.core_powered
        pm.to_power_off()
        assert not pm.core_powered


class TestHistory:
    def test_transitions_logged(self):
        pm = PMControl()
        pm.to_deep_sleep()
        pm.to_active()
        pm.to_power_off()
        assert pm.history == [
            (PowerMode.ACT, PowerMode.DS),
            (PowerMode.DS, PowerMode.ACT),
            (PowerMode.ACT, PowerMode.PO),
        ]

    def test_no_op_transitions_not_logged(self):
        pm = PMControl()
        pm.to_active()
        assert pm.history == []
