"""Defect characterisation: min-resistance search and classification."""

import pytest

from repro.devices.pvt import PVT
from repro.regulator import (
    DEFECTS,
    VrefSelect,
    classify_defect,
    min_resistance_for_drf,
    vreg_curve,
)
from repro.regulator.characterize import characterize_over_grid
from repro.regulator.defects import DefectCategory

HOT = PVT("fs", 1.0, 125.0)
SEL = VrefSelect.VREF74


class TestVregCurve:
    def test_monotone_degradation_for_drf_defect(self):
        values = vreg_curve(DEFECTS[1], [1e3, 1e4, 1e5, 1e6], HOT, SEL)
        assert all(a >= b - 1e-6 for a, b in zip(values, values[1:]))
        assert values[0] > 0.70
        assert values[-1] < 0.60


class TestMinResistance:
    def test_finite_for_critical_defect(self, drv_cs2):
        r = min_resistance_for_drf(DEFECTS[16], drv_cs2, HOT, SEL)
        assert r is not None and 0 < r < 1e5

    def test_threshold_brackets_failure(self, drv_cs2):
        from repro.cell.retention import retains
        from repro.regulator import solve_regulator

        r = min_resistance_for_drf(DEFECTS[1], drv_cs2, HOT, SEL)
        fail_op, _ = solve_regulator(HOT, SEL, DEFECTS[1], r * 1.1)
        pass_op, _ = solve_regulator(HOT, SEL, DEFECTS[1], r * 0.9)
        assert not retains(fail_op.vddcc, drv_cs2, 1e-3, HOT.corner, HOT.temp_c)
        assert retains(pass_op.vddcc, drv_cs2, 1e-3, HOT.corner, HOT.temp_c)

    def test_negligible_defect_returns_none(self, drv_cs2):
        assert min_resistance_for_drf(DEFECTS[14], drv_cs2, HOT, SEL) is None

    def test_power_defect_returns_none(self, drv_cs2):
        assert min_resistance_for_drf(DEFECTS[6], drv_cs2, HOT, SEL) is None

    def test_harder_scenario_needs_more_resistance(self, drv_cs2):
        """Lower DRV (CS4-like) -> larger minimal resistance (Table II)."""
        r_easy = min_resistance_for_drf(DEFECTS[1], drv_cs2, HOT, SEL)
        r_hard = min_resistance_for_drf(DEFECTS[1], 0.20, HOT, SEL)
        assert r_easy < r_hard

    def test_invalid_config_flagged_as_zero(self):
        """DRV above the tap target: the fault-free SRAM already fails."""
        r = min_resistance_for_drf(DEFECTS[1], 0.78, HOT, SEL)
        assert r == 0.0

    def test_timing_defect_routed(self, drv_cs2):
        r = min_resistance_for_drf(DEFECTS[8], drv_cs2, HOT, SEL)
        # RC thresholds land far above the DC defects' ohm-to-kiloohm range.
        assert r is not None and 1e4 < r < 5e8


class TestCharacterizeOverGrid:
    def test_argmin_reported(self, drv_cs2):
        grid = [PVT("fs", 1.0, 25.0), PVT("fs", 1.0, 125.0)]
        result = characterize_over_grid(
            DEFECTS[16],
            drv_by_pvt=lambda pvt: drv_cs2,
            pvt_grid=grid,
            vrefsel_for=lambda pvt: SEL,
        )
        assert result.detectable
        # Hot condition needs less resistance (leakage degrades Vreg).
        assert result.pvt.temp_c == 125.0

    def test_undetectable_over_grid(self):
        result = characterize_over_grid(
            DEFECTS[14],
            drv_by_pvt=lambda pvt: 0.4,
            pvt_grid=[HOT],
            vrefsel_for=lambda pvt: SEL,
        )
        assert not result.detectable
        assert result.min_resistance is None and result.pvt is None


class TestClassification:
    """Empirical Vreg signatures against the paper's category lists.

    The full 32-defect sweep runs in the benchmarks; here a representative
    defect of each category keeps the suite fast.
    """

    @pytest.mark.parametrize(
        "defect_id, expected",
        [
            (1, DefectCategory.DRF),
            (3, DefectCategory.BOTH),
            (6, DefectCategory.POWER),
            (14, DefectCategory.NEGLIGIBLE),
            (8, DefectCategory.DRF),       # timing mechanism
            (28, DefectCategory.POWER),    # deactivation delay
            (20, DefectCategory.POWER),    # off-mode pull-up path
        ],
    )
    def test_representative_defects(self, defect_id, expected):
        assert classify_defect(DEFECTS[defect_id]) is expected
