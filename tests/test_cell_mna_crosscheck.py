"""Cross-check: vectorised cell analysis vs the general MNA solver.

The SNM/DRV machinery uses a dedicated vectorised bisection; the hold
circuit built by :meth:`CellDesign.build_hold_circuit` runs through the
generic Newton solver.  Both must describe the same cell.
"""

import numpy as np
import pytest

from repro.cell import DEFAULT_CELL, cell_leakage_current
from repro.cell.leakage import _hold_state
from repro.devices import CellVariation
from repro.spice import solve_dc
from repro.verify.tolerances import (
    COLLAPSE_SYMMETRY_ABS_V,
    LEAKAGE_REL,
    NODE_VOLTAGE_ABS_V,
)

SYM = CellVariation.symmetric()


def _solve_hold(vdd, variation=SYM, corner="typical", temp=25.0, state_high=True):
    circuit = DEFAULT_CELL.build_hold_circuit(vdd, variation, corner, temp)
    x0 = np.zeros(circuit.unknown_count())
    node = circuit.node("s" if state_high else "sb")
    x0[node - 1] = vdd
    # Default gmin (1e-12 S) injects picoamp-scale shunt currents - the same
    # order as the cell leakage under test - so tighten it here.
    return circuit, solve_dc(circuit, x0=x0, gmin=1e-16)


class TestHoldStateAgreement:
    @pytest.mark.parametrize("vdd", [1.1, 0.6, 0.3])
    def test_internal_nodes_match(self, vdd):
        models = DEFAULT_CELL.models(SYM, "typical", 25.0)
        s_vec, sb_vec = _hold_state(np.array(vdd), models)
        _c, sol = _solve_hold(vdd)
        assert sol.voltage("s") == pytest.approx(
            float(s_vec), abs=NODE_VOLTAGE_ABS_V
        )
        assert sol.voltage("sb") == pytest.approx(
            float(sb_vec), abs=NODE_VOLTAGE_ABS_V
        )

    def test_supply_current_matches_leakage_model(self):
        vdd = 0.8
        _c, sol = _solve_hold(vdd)
        mna_current = -sol.branch_current("vddc")
        model_current = cell_leakage_current(vdd)
        assert mna_current == pytest.approx(model_current, rel=LEAKAGE_REL)

    def test_bistability_in_hold(self):
        _c1, sol1 = _solve_hold(0.9, state_high=True)
        _c0, sol0 = _solve_hold(0.9, state_high=False)
        assert sol1.voltage("s") > 0.8 and sol1.voltage("sb") < 0.1
        assert sol0.voltage("sb") > 0.8 and sol0.voltage("s") < 0.1

    def test_monostable_below_drv(self):
        """Far below DRV for a skewed cell, both seeds land in one state."""
        variation = CellVariation.worst_case_drv1(6.0)
        vdd = 0.3  # well under this cell's DRV_DS1 (~0.6+)
        _c1, sol1 = _solve_hold(vdd, variation, state_high=True)
        _c0, sol0 = _solve_hold(vdd, variation, state_high=False)
        # Stored '1' is untenable: node S collapses regardless of the seed.
        assert sol1.voltage("s") - sol1.voltage("sb") == pytest.approx(
            sol0.voltage("s") - sol0.voltage("sb"), abs=COLLAPSE_SYMMETRY_ABS_V
        )
