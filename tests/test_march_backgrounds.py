"""Word-oriented data backgrounds.

The studied SRAM is word-oriented (64-bit words): one write drives all
bits of a word simultaneously, so an intra-word coupling fault whose
aggressor and victim always receive the *same* value is never sensitised
by a solid background.  A checkerboard background gives adjacent bits
opposite values and exposes it - the classic word-oriented-memory result
(van de Goor), reproduced here on the behavioral model.
"""

import pytest

from repro.march import march_c_minus, march_m_lz, run_march
from repro.sram import CouplingFaultIdempotent, LowPowerSRAM, SRAMConfig, StuckAtFault

CFG = SRAMConfig(n_words=16, word_bits=8)
CHECKERBOARD = 0xAA


def _intra_word_cfid() -> CouplingFaultIdempotent:
    """Aggressor bit 2 rising forces victim bit 1 of the same word to 1.

    The victim sits at a *lower* bit position: during a word write the
    victim's own write driver acts first, then the aggressor's transition
    disturbs it - so the forced value survives the write.  (A victim at a
    higher position is re-driven after the disturbance and the fault is
    masked even electrically.)
    """
    return CouplingFaultIdempotent(
        aggressor_addr=5, aggressor_bit=2,
        victim_addr=5, victim_bit=1,
        aggressor_rising=True, victim_value=1,
    )


class TestBackgroundSemantics:
    def test_default_is_solid(self):
        m = LowPowerSRAM(CFG)
        result = run_march(march_m_lz(), m)
        assert result.passed

    def test_checkerboard_fault_free(self):
        m = LowPowerSRAM(CFG)
        result = run_march(march_m_lz(), m, background=CHECKERBOARD)
        assert result.passed

    def test_background_is_masked(self):
        m = LowPowerSRAM(CFG)
        result = run_march(march_m_lz(), m, background=0xFAA)  # > 8 bits
        assert result.passed

    def test_written_patterns(self):
        m = LowPowerSRAM(CFG)
        run_march(march_m_lz(), m, background=CHECKERBOARD)
        # March m-LZ ends on the all-"0" background = complement pattern.
        assert m.read(0) == 0x55


class TestIntraWordCoupling:
    def test_solid_background_misses(self):
        """All bits written together: the CFid never fires observably."""
        m = LowPowerSRAM(CFG)
        m.inject(_intra_word_cfid())
        assert run_march(march_c_minus(), m).passed

    def test_checkerboard_background_detects(self):
        m = LowPowerSRAM(CFG)
        m.inject(_intra_word_cfid())
        result = run_march(march_c_minus(), m, background=CHECKERBOARD)
        assert result.detected
        assert (5, 1) in result.failing_cells()

    def test_stuck_at_detected_under_any_background(self):
        for background in (None, CHECKERBOARD, 0x0F):
            m = LowPowerSRAM(CFG)
            m.inject(StuckAtFault(3, 6, 0))
            result = run_march(march_c_minus(), m, background=background)
            assert result.detected, f"background={background}"
