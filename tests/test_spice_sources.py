"""Time-dependent and controlled sources."""

import numpy as np
import pytest

from repro.spice import Circuit, solve_dc, solve_transient
from repro.spice.sources import (
    PiecewiseLinearVoltageSource,
    PulseVoltageSource,
    VoltageControlledVoltageSource,
)


class TestPulse:
    def _pulse(self, **kw):
        defaults = dict(v1=0.0, v2=1.0, delay=1e-6, rise=0.1e-6,
                        width=1e-6, fall=0.1e-6, period=0.0)
        defaults.update(kw)
        return PulseVoltageSource("p", 1, 0, **defaults)

    def test_waveform_segments(self):
        p = self._pulse()
        assert p.value_at(0.0) == 0.0
        assert p.value_at(1.05e-6) == pytest.approx(0.5)  # mid-rise
        assert p.value_at(1.5e-6) == 1.0                  # high plateau
        assert p.value_at(2.15e-6) == pytest.approx(0.5)  # mid-fall
        assert p.value_at(5e-6) == 0.0                    # back low

    def test_periodic(self):
        p = self._pulse(period=4e-6)
        assert p.value_at(1.5e-6) == p.value_at(5.5e-6) == 1.0

    def test_validation(self):
        with pytest.raises(ValueError, match="rise/fall"):
            self._pulse(rise=0.0)
        with pytest.raises(ValueError, match="period"):
            self._pulse(period=0.5e-6)

    def test_dc_uses_initial_value(self):
        c = Circuit()
        c.add(PulseVoltageSource("p", c.node("a"), 0, v1=0.2, v2=1.0, delay=1e-6))
        c.resistor("r", "a", "0", 1e3)
        assert solve_dc(c).voltage("a") == pytest.approx(0.2)

    def test_drives_transient(self):
        c = Circuit()
        c.add(PulseVoltageSource(
            "p", c.node("in"), 0, v1=0.0, v2=1.0,
            delay=0.0, rise=1e-9, width=5e-6, fall=1e-9,
        ))
        c.resistor("r", "in", "out", 1e3)
        c.capacitor("cl", "out", "0", 1e-10)  # tau = 100 ns
        x0 = np.zeros(c.unknown_count())
        result = solve_transient(c, t_stop=2e-6, dt=2e-8, x0=x0)
        assert result.final().voltage("out") == pytest.approx(1.0, abs=0.01)


class TestPWL:
    def test_interpolation(self):
        p = PiecewiseLinearVoltageSource("p", 1, 0, [(0.0, 0.0), (1.0, 2.0), (3.0, 0.0)])
        assert p.value_at(-1.0) == 0.0
        assert p.value_at(0.5) == pytest.approx(1.0)
        assert p.value_at(2.0) == pytest.approx(1.0)
        assert p.value_at(9.0) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError, match="strictly increase"):
            PiecewiseLinearVoltageSource("p", 1, 0, [(1.0, 0.0), (1.0, 1.0)])
        with pytest.raises(ValueError, match="at least one"):
            PiecewiseLinearVoltageSource("p", 1, 0, [])


class TestVCVS:
    def test_ideal_amplification(self):
        c = Circuit()
        c.vsource("vin", "in", "0", 0.25)
        c.add(VoltageControlledVoltageSource(
            "e1", c.node("out"), 0, c.node("in"), 0, gain=4.0
        ))
        c.resistor("rl", "out", "0", 1e3)
        assert solve_dc(c).voltage("out") == pytest.approx(1.0)

    def test_differential_control(self):
        c = Circuit()
        c.vsource("va", "a", "0", 0.8)
        c.vsource("vb", "b", "0", 0.3)
        c.add(VoltageControlledVoltageSource(
            "e1", c.node("out"), 0, c.node("a"), c.node("b"), gain=2.0
        ))
        c.resistor("rl", "out", "0", 1e3)
        assert solve_dc(c).voltage("out") == pytest.approx(1.0)

    def test_unity_follower_with_shared_node(self):
        """Output node also the control node: derivative accumulation."""
        c = Circuit()
        c.vsource("vin", "in", "0", 0.6)
        # V(out) = 0.5 * (V(in) - V(out))  =>  V(out) = 0.2
        c.add(VoltageControlledVoltageSource(
            "e1", c.node("out"), 0, c.node("in"), c.node("out"), gain=0.5
        ))
        c.resistor("rl", "out", "0", 1e3)
        assert solve_dc(c).voltage("out") == pytest.approx(0.2)
