"""End-to-end integration: the paper's storyline on one scenario.

A CS2-class weak cell, a divider defect in the regulator, and the optimised
test flow's first iteration - driven exclusively through the public API, the
way the examples and a downstream user would.
"""

import pytest

from repro import (
    CellVariation,
    DRFScenario,
    PVT,
    VrefSelect,
    march_lz,
    march_m_lz,
    paper_flow,
)
from repro.regulator import DEFECTS
from repro.units import OPEN_LINE_OHMS


@pytest.fixture(scope="module")
def iteration1():
    """Table III iteration 1: VDD=1.0 V, Vref=0.74*VDD, hot corner."""
    flow = paper_flow()
    return flow.iterations[0].config


class TestStoryline:
    def test_defect_free_device_ships(self, iteration1):
        scenario = DRFScenario(
            pvt=iteration1.pvt,
            vrefsel=iteration1.vrefsel,
            variation=CellVariation(mpcc1=-3, mncc1=-3),
        )
        assert scenario.run_test(march_m_lz(iteration1.ds_time)).passed

    def test_defective_device_is_rejected(self, iteration1):
        scenario = DRFScenario(
            pvt=iteration1.pvt,
            vrefsel=iteration1.vrefsel,
            variation=CellVariation(mpcc1=-3, mncc1=-3),
            defect=DEFECTS[1],
            resistance=20e6,
        )
        result = scenario.run_test(march_m_lz(iteration1.ds_time))
        assert result.detected

    def test_march_lz_gap_on_mirrored_cells(self, iteration1):
        """Why the paper extended March LZ: stored-0 retention escapes."""
        scenario = DRFScenario(
            pvt=iteration1.pvt,
            vrefsel=iteration1.vrefsel,
            variation=CellVariation(mpcc2=-3, mncc2=-3),  # degrades 0s
            defect=DEFECTS[1],
            resistance=20e6,
        )
        assert scenario.run_test(march_lz()).passed
        assert scenario.run_test(march_m_lz()).detected

    def test_open_line_is_always_caught(self, iteration1):
        """An actual open (> 500M) in a DRF branch must never ship."""
        scenario = DRFScenario(
            pvt=iteration1.pvt,
            vrefsel=iteration1.vrefsel,
            variation=CellVariation.worst_case_drv1(6.0),
            defect=DEFECTS[29],
            resistance=OPEN_LINE_OHMS,
        )
        assert scenario.run_test(march_m_lz()).detected

    def test_flow_cost_accounting(self):
        flow = paper_flow()
        # 3 runs of a 5N+4 algorithm on 4K words at 10 ns, plus 6 x 1 ms DS.
        assert flow.test_time(4096) == pytest.approx(3 * 20484 * 10e-9 + 6e-3)
        assert flow.time_reduction() == pytest.approx(0.75)
