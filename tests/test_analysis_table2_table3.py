"""Table II characterisation rows and Table III flow (reduced scale)."""

import pytest

from repro.analysis.table2 import (
    characterize_case,
    render_table2,
    table2_rows,
    vrefsel_for_vdd,
)
from repro.analysis.table3 import render_table3, table3_flow
from repro.devices.pvt import PVT
from repro.regulator import VrefSelect
from repro.verify.tolerances import TIME_REDUCTION_ABS

ONE_PVT = (PVT("fs", 1.0, 125.0),)


class TestConfigurationRule:
    def test_vref_follows_vdd(self):
        """Section IV.A: 0.74/0.70/0.64 * VDD for VDD = 1.0/1.1/1.2 V."""
        assert vrefsel_for_vdd(1.0) is VrefSelect.VREF74
        assert vrefsel_for_vdd(1.1) is VrefSelect.VREF70
        assert vrefsel_for_vdd(1.2) is VrefSelect.VREF64


class TestCharacterizeCase:
    def test_easier_case_study_needs_less_resistance(self):
        r_cs1 = characterize_case(1, "CS1-1", pvt_grid=ONE_PVT)
        r_cs4 = characterize_case(1, "CS4-1", pvt_grid=ONE_PVT)
        assert r_cs1.min_resistance < r_cs4.min_resistance

    def test_cs5_below_cs2(self):
        """The 64-cell load effect (paper: CS5 min-R < CS2 min-R)."""
        r_cs2 = characterize_case(16, "CS2-1", pvt_grid=ONE_PVT)
        r_cs5 = characterize_case(16, "CS5-1", pvt_grid=ONE_PVT)
        assert r_cs5.min_resistance < r_cs2.min_resistance

    def test_argmin_pvt_reported(self):
        cell = characterize_case(1, "CS2-1", pvt_grid=ONE_PVT)
        assert cell.pvt == ONE_PVT[0]
        assert "fs, 1.0V, 125C" in cell.render()


class TestTable2Rows:
    def test_row_structure_and_render(self):
        rows = table2_rows(
            defect_ids=(1, 16), families=("CS2-1", "CS4-1"), pvt_grid=ONE_PVT
        )
        assert [r.defect_id for r in rows] == [1, 16]
        assert set(rows[0].cells) == {"CS2-1", "CS4-1"}
        text = render_table2(rows)
        assert "Table II" in text and "Df16" in text

    def test_description_passthrough(self):
        rows = table2_rows(defect_ids=(1,), families=("CS2-1",), pvt_grid=ONE_PVT)
        assert "Series with R1" in rows[0].description


class TestTable3Reduced:
    def test_divider_defects_force_tap_ladder(self):
        """Df3 and Df4 alone force the three-tap ladder of Table III."""
        flow = table3_flow(defect_ids=(1, 3, 4))
        picks = [(it.config.vdd, it.config.vrefsel) for it in flow.iterations]
        assert picks == [
            (1.0, VrefSelect.VREF74),
            (1.1, VrefSelect.VREF70),
            (1.2, VrefSelect.VREF64),
        ]
        assert flow.time_reduction() == pytest.approx(
            0.75, abs=TIME_REDUCTION_ABS
        )

    def test_render(self):
        flow = table3_flow(defect_ids=(1, 3, 4))
        text = render_table3(flow)
        assert "Table III" in text and "75%" in text
