"""The observability layer: recorder primitives, solver/campaign telemetry,
cross-process merge invariance, and the schema-versioned run report."""

import json
import math

import pytest

from repro import obs
from repro.campaign import SweepSpec, TaskPoint, run_campaign, task
from repro.campaign.metrics import ProgressReporter
from repro.devices import CORNERS, MosfetModel, nmos_params, pmos_params
from repro.obs import COUNT_BOUNDS, TIME_BOUNDS, Histogram, Recorder
from repro.obs.recorder import bounds_for
from repro.obs.report import (
    REPORT_FILENAME,
    SCHEMA,
    build_report,
    load_report,
    validate,
    write_report,
)
from repro.obs.trace import TraceWriter, read_trace
from repro.spice import Circuit, ConvergenceError, solve_dc


@pytest.fixture(autouse=True)
def _no_leaked_recorder():
    """Every test starts and ends with instrumentation disabled."""
    obs.uninstall()
    yield
    obs.uninstall()


def _inverter_circuit(vin=0.55, corner="typical"):
    c = CORNERS[corner]
    circuit = Circuit("obs-inverter")
    circuit.vsource("vdd", "vdd", "0", 1.1)
    circuit.vsource("vin", "in", "0", vin)
    circuit.mosfet(
        "mp", "out", "in", "vdd", MosfetModel(pmos_params("mp", 240e-9), c, 25.0)
    )
    circuit.mosfet(
        "mn", "out", "in", "0", MosfetModel(nmos_params("mn", 120e-9), c, 25.0)
    )
    return circuit


def _singular_circuit():
    """Two voltage sources pinning one node to different values: every
    strategy's Jacobian is singular, so the full chain fails fast."""
    circuit = Circuit("contradiction")
    circuit.vsource("v1", "a", "0", 1.0)
    circuit.vsource("v2", "a", "0", 2.0)
    return circuit


@task("obs-inverter")
def _obs_inverter_task(params, context):
    solution = solve_dc(_inverter_circuit(vin=params["vin"]))
    return {"vout": solution.voltage("out")}


def _inverter_spec(n=6):
    tasks = [
        TaskPoint.make("obs-inverter", vin=round(0.2 + 0.1 * i, 3))
        for i in range(n)
    ]
    return SweepSpec.build("obs-toy", tasks)


class TestHistogram:
    def test_bucketing_is_exact_for_small_counts(self):
        hist = Histogram(COUNT_BOUNDS)
        for value in (0, 1, 1, 16, 17, 5000):
            hist.observe(value)
        assert hist.counts[0] == 1  # value 0
        assert hist.counts[1] == 2  # the two 1s
        assert hist.counts[16] == 1  # value 16 (last exact bucket)
        assert hist.counts[17] == 1  # 17 spills into the 32 bucket
        assert hist.counts[-1] == 1  # 5000 > 4096: overflow bucket
        assert hist.count == 6 and hist.min == 0 and hist.max == 5000

    def test_summary_statistics(self):
        hist = Histogram(COUNT_BOUNDS)
        for value in (2, 4, 6):
            hist.observe(value)
        assert hist.mean == pytest.approx(4.0)
        assert hist.quantile(0.0) == 2 and hist.quantile(1.0) == 6
        assert hist.quantile(0.5) == 4

    def test_merge_adds_everything(self):
        a, b = Histogram(COUNT_BOUNDS), Histogram(COUNT_BOUNDS)
        for value in (1, 2):
            a.observe(value)
        for value in (3, 100):
            b.observe(value)
        a.merge(b)
        assert a.count == 4 and a.total == 106
        assert a.min == 1 and a.max == 100

    def test_merge_rejects_mismatched_bounds(self):
        with pytest.raises(ValueError, match="bounds"):
            Histogram(COUNT_BOUNDS).merge(Histogram(TIME_BOUNDS))

    def test_dict_round_trip(self):
        hist = Histogram(TIME_BOUNDS)
        for value in (1e-4, 2.5e-3, 0.7):
            hist.observe(value)
        clone = Histogram.from_dict(json.loads(json.dumps(hist.to_dict())))
        assert clone == hist

    def test_empty_histogram_serialises_nulls(self):
        data = Histogram(COUNT_BOUNDS).to_dict()
        assert data["min"] is None and data["max"] is None
        assert Histogram.from_dict(data).min == math.inf

    def test_bounds_chosen_by_name_convention(self):
        assert bounds_for("dc.solve.seconds") == TIME_BOUNDS
        assert bounds_for("dc.newton_iters") == COUNT_BOUNDS


class TestRecorder:
    def test_counters_accumulate(self):
        rec = Recorder()
        rec.count("a")
        rec.count("a", 4)
        assert rec.counters == {"a": 5}

    def test_spans_nest_into_paths(self):
        rec = Recorder()
        with rec.span("outer"):
            with rec.span("inner"):
                pass
            with rec.span("inner"):
                pass
        assert set(rec.spans) == {"outer", "outer/inner"}
        assert rec.spans["outer/inner"].calls == 2
        assert rec.spans["outer"].calls == 1
        assert rec.spans["outer"].total >= rec.spans["outer/inner"].total

    def test_timed_decorator(self):
        rec = Recorder()

        @rec.timed("f")
        def f(x):
            return x + 1

        assert f(1) == 2 and f(2) == 3
        assert rec.spans["f"].calls == 2

    def test_snapshot_merge_equals_direct_recording(self):
        direct, merged, other = Recorder(), Recorder(), Recorder()
        for rec in (direct, merged):
            rec.count("n", 2)
            rec.observe("iters", 3)
        direct.count("n", 1)
        direct.observe("iters", 9)
        other.count("n", 1)
        other.observe("iters", 9)
        merged.merge(other.snapshot())
        assert merged.counters == direct.counters
        assert merged.histograms["iters"] == direct.histograms["iters"]

    def test_snapshot_is_json_able(self):
        rec = Recorder()
        rec.count("n")
        rec.observe("iters", 1)
        with rec.span("s"):
            pass
        clone = json.loads(json.dumps(rec.snapshot()))
        fresh = Recorder()
        fresh.merge(clone)
        assert fresh.counters == {"n": 1}
        assert fresh.spans["s"].calls == 1

    def test_clear(self):
        rec = Recorder()
        rec.count("n")
        rec.observe("h", 1)
        rec.clear()
        assert not rec.counters and not rec.histograms and not rec.spans


class TestModuleHelpers:
    def test_disabled_helpers_are_no_ops(self):
        assert not obs.enabled()
        obs.count("x")
        obs.observe("x", 1.0)
        with obs.span("x"):
            pass
        assert obs.active() is None

    def test_disabled_span_is_shared_singleton(self):
        assert obs.span("a") is obs.span("b")

    def test_recording_installs_and_restores(self):
        outer = Recorder()
        with obs.recording(outer):
            assert obs.active() is outer
            obs.count("n")
            with obs.recording() as inner:
                assert obs.active() is inner and inner is not outer
                obs.count("n")
            assert obs.active() is outer
        assert obs.active() is None
        assert outer.counters == {"n": 1}

    def test_timed_decorator_follows_installation(self):
        calls = []

        @obs.timed("g")
        def g():
            calls.append(1)

        g()  # disabled: runs, records nothing
        with obs.recording() as rec:
            g()
        assert len(calls) == 2
        assert rec.spans["g"].calls == 1


class TestSolverTelemetry:
    def test_successful_solve_records_strategy_and_iters(self):
        with obs.recording() as rec:
            solve_dc(_inverter_circuit())
        assert rec.counters["dc.solves"] == 1
        assert rec.counters.get("dc.failures", 0) == 0
        strategies = [
            k for k in rec.counters if k.startswith("dc.converged.")
        ]
        assert strategies == ["dc.converged.newton"]
        iters = rec.histograms["dc.newton_iters"]
        assert iters.count == 1 and iters.min >= 1
        assert rec.histograms["dc.solve.seconds"].count == 1

    def test_solve_records_assembly_factor_split(self):
        with obs.recording() as rec:
            solve_dc(_inverter_circuit())
        assemble = rec.histograms["dc.assemble.seconds"]
        factor = rec.histograms["dc.factor.seconds"]
        assert assemble.count >= 1 and factor.count >= 1
        assert assemble.total > 0.0 and factor.total > 0.0
        assert rec.counters["dc.backend.compiled"] == 1

    def test_solve_counts_active_backend(self):
        from repro.spice import using_backend

        with obs.recording() as rec:
            with using_backend("reference"):
                solve_dc(_inverter_circuit())
        assert rec.counters["dc.backend.reference"] == 1
        assert "dc.backend.compiled" not in rec.counters

    def test_failed_solve_counts_failure(self):
        with obs.recording() as rec:
            with pytest.raises(ConvergenceError):
                solve_dc(_singular_circuit())
        assert rec.counters["dc.solves"] == 1
        assert rec.counters["dc.failures"] == 1
        assert rec.counters["dc.gmin_decades"] >= 2

    def test_convergence_error_carries_strategy_trail(self):
        with pytest.raises(ConvergenceError) as excinfo:
            solve_dc(_singular_circuit())
        message = str(excinfo.value)
        assert "'contradiction'" in message and "tried" in message
        for strategy in ("newton(", "gmin-step(", "source-step("):
            assert strategy in message
        assert "Newton iterations total" in message
        context = excinfo.value.context
        assert context["vstep_limits"] == [0.4, 0.1, 0.04]
        assert any("gmin-step" in entry for entry in context["strategies"])
        assert context["total_iterations"] >= 0

    def test_tightened_step_limits_reported(self):
        with pytest.raises(ConvergenceError, match=r"vstep limits tried: "
                                                   r"0\.4, 0\.1, 0\.04"):
            solve_dc(_singular_circuit())
        # A single-limit failure keeps the plain trail message.
        with pytest.raises(ConvergenceError) as excinfo:
            solve_dc(_singular_circuit(), vstep_limit=0.04)
        assert "vstep limits tried" not in str(excinfo.value)


class TestProgressReporterRate:
    """Satellite: the streamed rate counts executed tasks only."""

    def _reporter(self, stream, verbose=True, elapsed=2.0):
        import io
        import time

        reporter = ProgressReporter("toy", 10, verbose=verbose, stream=stream)
        reporter.started = time.perf_counter() - elapsed
        return reporter

    def test_rate_ignores_cache_hits(self):
        import io

        stream = io.StringIO()
        reporter = self._reporter(stream)
        reporter.cache_hits(8)
        reporter.chunk_done(2)
        lines = stream.getvalue().splitlines()
        # 8 hits in ~2s must not read as 4 tasks/s; only the 2 executed count.
        assert "1.00 tasks/s" in lines[-1]
        assert "4.0" not in lines[-1]

    def test_hits_only_run_reports_zero_rate(self):
        import io

        stream = io.StringIO()
        reporter = self._reporter(stream)
        reporter.cache_hits(10)
        assert "0.00 tasks/s" in stream.getvalue()

    def test_nonverbose_failure_run_gets_one_final_line(self):
        import io

        stream = io.StringIO()
        reporter = self._reporter(stream, verbose=False)
        reporter.chunk_done(9, failed=1)
        reporter.cache_hits(1)
        assert stream.getvalue() == ""  # silent while running
        reporter.finish()
        reporter.finish()  # idempotent: the line appears exactly once
        lines = stream.getvalue().splitlines()
        assert len(lines) == 1
        assert "10/10 done" in lines[0] and "1 failed" in lines[0]
        assert "run complete" in lines[0]

    def test_nonverbose_clean_run_stays_silent(self):
        import io

        stream = io.StringIO()
        reporter = self._reporter(stream, verbose=False)
        reporter.chunk_done(10)
        reporter.finish()
        assert stream.getvalue() == ""

    def test_summary_derived_from_recorder_counters(self):
        import io

        recorder = Recorder()
        reporter = ProgressReporter(
            "toy", 4, stream=io.StringIO(), recorder=recorder
        )
        reporter.cache_hits(1)
        reporter.chunk_done(3, failed=2)
        summary = reporter.summary()
        assert (summary.executed, summary.cache_hits, summary.failures) == (3, 1, 2)
        assert recorder.counters["campaign.executed"] == 3
        assert recorder.counters["campaign.cache_hits"] == 1
        assert recorder.counters["campaign.failures"] == 2


def _deterministic_histograms(recorder):
    return {
        name: hist.to_dict()
        for name, hist in recorder.histograms.items()
        if not name.endswith(".seconds")
    }


class TestDcSplitRender:
    @staticmethod
    def _report(a_sum, f_sum, count):
        def hist(total):
            return {"count": count, "sum": total, "max": total,
                    "bounds": [], "counts": [count]}

        return {"histograms": {
            "dc.assemble.seconds": hist(a_sum),
            "dc.factor.seconds": hist(f_sum),
        }}

    def test_split_line_shares_and_units(self):
        from repro.obs.render import render_dc_split

        line = render_dc_split(self._report(0.75, 0.25, 12))
        assert "assembly 750.00ms (75%)" in line
        assert "factorization 250.00ms (25%)" in line
        assert "over 12 solves" in line

    def test_absent_histograms_render_nothing(self):
        from repro.obs.render import render_dc_split

        assert render_dc_split({"histograms": {}}) == ""

    def test_full_report_carries_split_line(self):
        from repro.obs.render import render_report

        result = run_campaign(_inverter_spec(3), observe=True)
        assert "dc solver split:" in render_report(result.report)


class TestCampaignTelemetry:
    def test_serial_observe_collects_solver_metrics(self):
        result = run_campaign(_inverter_spec(3), observe=True)
        rec = result.recorder
        assert rec.counters["campaign.executed"] == 3
        assert rec.counters["dc.solves"] == 3
        assert rec.histograms["dc.newton_iters"].count == 3
        assert rec.histograms["task.seconds"].count == 3
        assert rec.spans["task.obs-inverter"].calls == 3
        assert result.report is not None
        assert result.report_path is None  # no directory: in-memory only

    def test_observe_off_leaves_solver_counters_empty(self):
        result = run_campaign(_inverter_spec(2), observe=False)
        assert "dc.solves" not in result.recorder.counters
        assert result.recorder.counters["campaign.executed"] == 2
        assert result.report is None

    @pytest.mark.slow
    def test_parallel_merge_matches_serial(self):
        """Satellite: counters and deterministic histograms are invariant
        under the worker count; time-valued histograms agree on count."""
        serial = run_campaign(_inverter_spec(6), observe=True)
        parallel = run_campaign(_inverter_spec(6), jobs=2, observe=True)
        assert serial.recorder.counters == parallel.recorder.counters
        assert (_deterministic_histograms(serial.recorder)
                == _deterministic_histograms(parallel.recorder))
        for name in ("dc.solve.seconds", "task.seconds"):
            assert (serial.recorder.histograms[name].count
                    == parallel.recorder.histograms[name].count)
        spans = parallel.recorder.spans
        assert spans["task.obs-inverter"].calls == 6


class TestReport:
    def test_report_schema_and_convergence_block(self):
        result = run_campaign(_inverter_spec(4), observe=True)
        report = validate(result.report)
        assert report["schema"] == SCHEMA
        assert report["campaign"]["name"] == "obs-toy"
        assert report["campaign"]["total"] == 4
        assert report["convergence"]["solves"] == 4
        assert report["convergence"]["strategies"] == {"newton": 4}
        assert report["convergence"]["failure_causes"] == {}
        assert len(report["slowest"]) == 4
        elapsed = [entry["elapsed"] for entry in report["slowest"]]
        assert elapsed == sorted(elapsed, reverse=True)

    def test_failure_causes_grouped_by_type(self):
        records = run_campaign(
            SweepSpec.build(
                "mixed",
                [TaskPoint.make("obs-inverter", vin=0.5),
                 TaskPoint.make("no-such-kind", x=1)],
            ),
            retries=0, observe=True,
        )
        causes = records.report["convergence"]["failure_causes"]
        assert causes == {"KeyError": 1}

    def test_top_n_truncates_slowest(self):
        result = run_campaign(_inverter_spec(5), observe=True)
        report = build_report(
            result.summary, result.recorder, result.records.values(), top_n=2
        )
        assert len(report["slowest"]) == 2

    def test_write_load_round_trip(self, tmp_path):
        result = run_campaign(_inverter_spec(2), observe=True)
        path = write_report(result.report, tmp_path)
        assert path.name == REPORT_FILENAME
        assert load_report(path) == result.report
        assert load_report(tmp_path) == result.report  # directory form

    def test_validate_rejects_foreign_schema(self):
        with pytest.raises(ValueError, match="schema"):
            validate({"schema": "repro.obs.report/999"})
        with pytest.raises(ValueError, match="campaign"):
            validate({"schema": SCHEMA})

    def test_run_campaign_writes_report_and_trace(self, tmp_path):
        result = run_campaign(
            _inverter_spec(3), cache_dir=str(tmp_path), observe=True
        )
        assert result.report_path == str(tmp_path / REPORT_FILENAME)
        report = load_report(result.report_path)
        assert report["campaign"]["executed"] == 3
        events = read_trace(tmp_path / "trace.jsonl")
        kinds = [e["event"] for e in events]
        assert kinds[0] == "run-start" and kinds[-1] == "run-end"
        assert kinds.count("task") == 3
        assert all("t" in e for e in events)

    def test_rerun_reports_cache_hits_and_truncates_trace(self, tmp_path):
        run_campaign(_inverter_spec(3), cache_dir=str(tmp_path), observe=True)
        again = run_campaign(
            _inverter_spec(3), cache_dir=str(tmp_path), observe=True
        )
        report = load_report(tmp_path)
        assert report["campaign"]["cache_hits"] == 3
        assert report["campaign"]["executed"] == 0
        events = read_trace(tmp_path / "trace.jsonl")
        assert [e["event"] for e in events if e["event"] == "task"] == []
        assert any(e["event"] == "cache-hits" for e in events)
        assert again.summary.cache_hits == 3

    def test_obs_dir_separates_report_from_cache(self, tmp_path):
        cache = tmp_path / "cache"
        reports = tmp_path / "reports"
        run_campaign(
            _inverter_spec(2), cache_dir=str(cache), observe=True,
            obs_dir=str(reports),
        )
        assert (reports / REPORT_FILENAME).exists()
        assert not (cache / REPORT_FILENAME).exists()


class TestTrace:
    def test_writer_truncates_per_run(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with TraceWriter(path) as trace:
            trace.emit("run-start", total=1)
        with TraceWriter(path) as trace:
            trace.emit("run-start", total=2)
        events = read_trace(path)
        assert len(events) == 1 and events[0]["total"] == 2

    def test_reader_tolerates_torn_tail(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with TraceWriter(path) as trace:
            trace.emit("task", key="k")
        with path.open("a", encoding="utf-8") as fh:
            fh.write('{"event": "task", "key"')
        events = read_trace(path)
        assert len(events) == 1 and events[0]["key"] == "k"
