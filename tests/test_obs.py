"""The observability layer: recorder primitives, solver/campaign telemetry,
cross-process merge invariance, and the schema-versioned run report."""

import json
import math
import os
import time

import pytest

from repro import obs
from repro.campaign import SweepSpec, TaskPoint, run_campaign, task
from repro.campaign.metrics import ProgressReporter
from repro.devices import CORNERS, MosfetModel, nmos_params, pmos_params
from repro.obs import (
    COUNT_BOUNDS,
    TIME_BOUNDS,
    Histogram,
    Recorder,
    TraceContext,
    span_record,
    take_spans,
)
from repro.obs.recorder import bounds_for
from repro.obs.report import (
    REPORT_FILENAME,
    SCHEMA,
    build_report,
    load_report,
    validate,
    write_report,
)
from repro.obs.stitch import build_trees, critical_path, render_tree
from repro.obs.trace import TraceWriter, read_trace
from repro.spice import Circuit, ConvergenceError, solve_dc


@pytest.fixture(autouse=True)
def _no_leaked_recorder():
    """Every test starts and ends with instrumentation disabled."""
    obs.uninstall()
    yield
    obs.uninstall()


def _inverter_circuit(vin=0.55, corner="typical"):
    c = CORNERS[corner]
    circuit = Circuit("obs-inverter")
    circuit.vsource("vdd", "vdd", "0", 1.1)
    circuit.vsource("vin", "in", "0", vin)
    circuit.mosfet(
        "mp", "out", "in", "vdd", MosfetModel(pmos_params("mp", 240e-9), c, 25.0)
    )
    circuit.mosfet(
        "mn", "out", "in", "0", MosfetModel(nmos_params("mn", 120e-9), c, 25.0)
    )
    return circuit


def _singular_circuit():
    """Two voltage sources pinning one node to different values: every
    strategy's Jacobian is singular, so the full chain fails fast."""
    circuit = Circuit("contradiction")
    circuit.vsource("v1", "a", "0", 1.0)
    circuit.vsource("v2", "a", "0", 2.0)
    return circuit


@task("obs-inverter")
def _obs_inverter_task(params, context):
    solution = solve_dc(_inverter_circuit(vin=params["vin"]))
    return {"vout": solution.voltage("out")}


@task("obs-sleep")
def _obs_sleep_task(params, context):
    # Slow enough that a 2-worker pool spreads single-point chunks over
    # both processes (the >=3-distinct-pids stitching assertion).
    time.sleep(params["dt"])
    return {"i": params["i"]}


def _inverter_spec(n=6):
    tasks = [
        TaskPoint.make("obs-inverter", vin=round(0.2 + 0.1 * i, 3))
        for i in range(n)
    ]
    return SweepSpec.build("obs-toy", tasks)


class TestHistogram:
    def test_bucketing_is_exact_for_small_counts(self):
        hist = Histogram(COUNT_BOUNDS)
        for value in (0, 1, 1, 16, 17, 5000):
            hist.observe(value)
        assert hist.counts[0] == 1  # value 0
        assert hist.counts[1] == 2  # the two 1s
        assert hist.counts[16] == 1  # value 16 (last exact bucket)
        assert hist.counts[17] == 1  # 17 spills into the 32 bucket
        assert hist.counts[-1] == 1  # 5000 > 4096: overflow bucket
        assert hist.count == 6 and hist.min == 0 and hist.max == 5000

    def test_summary_statistics(self):
        hist = Histogram(COUNT_BOUNDS)
        for value in (2, 4, 6):
            hist.observe(value)
        assert hist.mean == pytest.approx(4.0)
        assert hist.quantile(0.0) == 2 and hist.quantile(1.0) == 6
        assert hist.quantile(0.5) == 4

    def test_merge_adds_everything(self):
        a, b = Histogram(COUNT_BOUNDS), Histogram(COUNT_BOUNDS)
        for value in (1, 2):
            a.observe(value)
        for value in (3, 100):
            b.observe(value)
        a.merge(b)
        assert a.count == 4 and a.total == 106
        assert a.min == 1 and a.max == 100

    def test_merge_rejects_mismatched_bounds(self):
        with pytest.raises(ValueError, match="bounds"):
            Histogram(COUNT_BOUNDS).merge(Histogram(TIME_BOUNDS))

    def test_dict_round_trip(self):
        hist = Histogram(TIME_BOUNDS)
        for value in (1e-4, 2.5e-3, 0.7):
            hist.observe(value)
        clone = Histogram.from_dict(json.loads(json.dumps(hist.to_dict())))
        assert clone == hist

    def test_empty_histogram_serialises_nulls(self):
        data = Histogram(COUNT_BOUNDS).to_dict()
        assert data["min"] is None and data["max"] is None
        assert Histogram.from_dict(data).min == math.inf

    def test_bounds_chosen_by_name_convention(self):
        assert bounds_for("dc.solve.seconds") == TIME_BOUNDS
        assert bounds_for("dc.newton_iters") == COUNT_BOUNDS


class TestRecorder:
    def test_counters_accumulate(self):
        rec = Recorder()
        rec.count("a")
        rec.count("a", 4)
        assert rec.counters == {"a": 5}

    def test_spans_nest_into_paths(self):
        rec = Recorder()
        with rec.span("outer"):
            with rec.span("inner"):
                pass
            with rec.span("inner"):
                pass
        assert set(rec.spans) == {"outer", "outer/inner"}
        assert rec.spans["outer/inner"].calls == 2
        assert rec.spans["outer"].calls == 1
        assert rec.spans["outer"].total >= rec.spans["outer/inner"].total

    def test_timed_decorator(self):
        rec = Recorder()

        @rec.timed("f")
        def f(x):
            return x + 1

        assert f(1) == 2 and f(2) == 3
        assert rec.spans["f"].calls == 2

    def test_snapshot_merge_equals_direct_recording(self):
        direct, merged, other = Recorder(), Recorder(), Recorder()
        for rec in (direct, merged):
            rec.count("n", 2)
            rec.observe("iters", 3)
        direct.count("n", 1)
        direct.observe("iters", 9)
        other.count("n", 1)
        other.observe("iters", 9)
        merged.merge(other.snapshot())
        assert merged.counters == direct.counters
        assert merged.histograms["iters"] == direct.histograms["iters"]

    def test_snapshot_is_json_able(self):
        rec = Recorder()
        rec.count("n")
        rec.observe("iters", 1)
        with rec.span("s"):
            pass
        clone = json.loads(json.dumps(rec.snapshot()))
        fresh = Recorder()
        fresh.merge(clone)
        assert fresh.counters == {"n": 1}
        assert fresh.spans["s"].calls == 1

    def test_clear(self):
        rec = Recorder()
        rec.count("n")
        rec.observe("h", 1)
        rec.clear()
        assert not rec.counters and not rec.histograms and not rec.spans


class TestModuleHelpers:
    def test_disabled_helpers_are_no_ops(self):
        assert not obs.enabled()
        obs.count("x")
        obs.observe("x", 1.0)
        with obs.span("x"):
            pass
        assert obs.active() is None

    def test_disabled_span_is_shared_singleton(self):
        assert obs.span("a") is obs.span("b")

    def test_recording_installs_and_restores(self):
        outer = Recorder()
        with obs.recording(outer):
            assert obs.active() is outer
            obs.count("n")
            with obs.recording() as inner:
                assert obs.active() is inner and inner is not outer
                obs.count("n")
            assert obs.active() is outer
        assert obs.active() is None
        assert outer.counters == {"n": 1}

    def test_timed_decorator_follows_installation(self):
        calls = []

        @obs.timed("g")
        def g():
            calls.append(1)

        g()  # disabled: runs, records nothing
        with obs.recording() as rec:
            g()
        assert len(calls) == 2
        assert rec.spans["g"].calls == 1


class TestSolverTelemetry:
    def test_successful_solve_records_strategy_and_iters(self):
        with obs.recording() as rec:
            solve_dc(_inverter_circuit())
        assert rec.counters["dc.solves"] == 1
        assert rec.counters.get("dc.failures", 0) == 0
        strategies = [
            k for k in rec.counters if k.startswith("dc.converged.")
        ]
        assert strategies == ["dc.converged.newton"]
        iters = rec.histograms["dc.newton_iters"]
        assert iters.count == 1 and iters.min >= 1
        assert rec.histograms["dc.solve.seconds"].count == 1

    def test_solve_records_assembly_factor_split(self):
        with obs.recording() as rec:
            solve_dc(_inverter_circuit())
        assemble = rec.histograms["dc.assemble.seconds"]
        factor = rec.histograms["dc.factor.seconds"]
        assert assemble.count >= 1 and factor.count >= 1
        assert assemble.total > 0.0 and factor.total > 0.0
        assert rec.counters["dc.backend.compiled"] == 1

    def test_solve_counts_active_backend(self):
        from repro.spice import using_backend

        with obs.recording() as rec:
            with using_backend("reference"):
                solve_dc(_inverter_circuit())
        assert rec.counters["dc.backend.reference"] == 1
        assert "dc.backend.compiled" not in rec.counters

    def test_failed_solve_counts_failure(self):
        with obs.recording() as rec:
            with pytest.raises(ConvergenceError):
                solve_dc(_singular_circuit())
        assert rec.counters["dc.solves"] == 1
        assert rec.counters["dc.failures"] == 1
        assert rec.counters["dc.gmin_decades"] >= 2

    def test_convergence_error_carries_strategy_trail(self):
        with pytest.raises(ConvergenceError) as excinfo:
            solve_dc(_singular_circuit())
        message = str(excinfo.value)
        assert "'contradiction'" in message and "tried" in message
        for strategy in ("newton(", "gmin-step(", "source-step("):
            assert strategy in message
        assert "Newton iterations total" in message
        context = excinfo.value.context
        assert context["vstep_limits"] == [0.4, 0.1, 0.04]
        assert any("gmin-step" in entry for entry in context["strategies"])
        assert context["total_iterations"] >= 0

    def test_tightened_step_limits_reported(self):
        with pytest.raises(ConvergenceError, match=r"vstep limits tried: "
                                                   r"0\.4, 0\.1, 0\.04"):
            solve_dc(_singular_circuit())
        # A single-limit failure keeps the plain trail message.
        with pytest.raises(ConvergenceError) as excinfo:
            solve_dc(_singular_circuit(), vstep_limit=0.04)
        assert "vstep limits tried" not in str(excinfo.value)


class TestProgressReporterRate:
    """Satellite: the streamed rate counts executed tasks only."""

    def _reporter(self, stream, verbose=True, elapsed=2.0):
        import io
        import time

        reporter = ProgressReporter("toy", 10, verbose=verbose, stream=stream)
        reporter.started = time.perf_counter() - elapsed
        return reporter

    def test_rate_ignores_cache_hits(self):
        import io

        stream = io.StringIO()
        reporter = self._reporter(stream)
        reporter.cache_hits(8)
        reporter.chunk_done(2)
        lines = stream.getvalue().splitlines()
        # 8 hits in ~2s must not read as 4 tasks/s; only the 2 executed count.
        assert "1.00 tasks/s" in lines[-1]
        assert "4.0" not in lines[-1]

    def test_hits_only_run_reports_zero_rate(self):
        import io

        stream = io.StringIO()
        reporter = self._reporter(stream)
        reporter.cache_hits(10)
        assert "0.00 tasks/s" in stream.getvalue()

    def test_nonverbose_failure_run_gets_one_final_line(self):
        import io

        stream = io.StringIO()
        reporter = self._reporter(stream, verbose=False)
        reporter.chunk_done(9, failed=1)
        reporter.cache_hits(1)
        assert stream.getvalue() == ""  # silent while running
        reporter.finish()
        reporter.finish()  # idempotent: the line appears exactly once
        lines = stream.getvalue().splitlines()
        assert len(lines) == 1
        assert "10/10 done" in lines[0] and "1 failed" in lines[0]
        assert "run complete" in lines[0]

    def test_nonverbose_clean_run_stays_silent(self):
        import io

        stream = io.StringIO()
        reporter = self._reporter(stream, verbose=False)
        reporter.chunk_done(10)
        reporter.finish()
        assert stream.getvalue() == ""

    def test_summary_derived_from_recorder_counters(self):
        import io

        recorder = Recorder()
        reporter = ProgressReporter(
            "toy", 4, stream=io.StringIO(), recorder=recorder
        )
        reporter.cache_hits(1)
        reporter.chunk_done(3, failed=2)
        summary = reporter.summary()
        assert (summary.executed, summary.cache_hits, summary.failures) == (3, 1, 2)
        assert recorder.counters["campaign.executed"] == 3
        assert recorder.counters["campaign.cache_hits"] == 1
        assert recorder.counters["campaign.failures"] == 2


def _deterministic_histograms(recorder):
    return {
        name: hist.to_dict()
        for name, hist in recorder.histograms.items()
        if not name.endswith(".seconds")
    }


class TestDcSplitRender:
    @staticmethod
    def _report(a_sum, f_sum, count):
        def hist(total):
            return {"count": count, "sum": total, "max": total,
                    "bounds": [], "counts": [count]}

        return {"histograms": {
            "dc.assemble.seconds": hist(a_sum),
            "dc.factor.seconds": hist(f_sum),
        }}

    def test_split_line_shares_and_units(self):
        from repro.obs.render import render_dc_split

        line = render_dc_split(self._report(0.75, 0.25, 12))
        assert "assembly 750.00ms (75%)" in line
        assert "factorization 250.00ms (25%)" in line
        assert "over 12 solves" in line

    def test_absent_histograms_render_nothing(self):
        from repro.obs.render import render_dc_split

        assert render_dc_split({"histograms": {}}) == ""

    def test_full_report_carries_split_line(self):
        from repro.obs.render import render_report

        result = run_campaign(_inverter_spec(3), observe=True)
        assert "dc solver split:" in render_report(result.report)


class TestCampaignTelemetry:
    def test_serial_observe_collects_solver_metrics(self):
        result = run_campaign(_inverter_spec(3), observe=True)
        rec = result.recorder
        assert rec.counters["campaign.executed"] == 3
        assert rec.counters["dc.solves"] == 3
        assert rec.histograms["dc.newton_iters"].count == 3
        assert rec.histograms["task.seconds"].count == 3
        assert rec.spans["task.obs-inverter"].calls == 3
        assert result.report is not None
        assert result.report_path is None  # no directory: in-memory only

    def test_observe_off_leaves_solver_counters_empty(self):
        result = run_campaign(_inverter_spec(2), observe=False)
        assert "dc.solves" not in result.recorder.counters
        assert result.recorder.counters["campaign.executed"] == 2
        assert result.report is None

    @pytest.mark.slow
    def test_parallel_merge_matches_serial(self):
        """Satellite: counters and deterministic histograms are invariant
        under the worker count; time-valued histograms agree on count."""
        serial = run_campaign(_inverter_spec(6), observe=True)
        parallel = run_campaign(_inverter_spec(6), jobs=2, observe=True)
        assert serial.recorder.counters == parallel.recorder.counters
        assert (_deterministic_histograms(serial.recorder)
                == _deterministic_histograms(parallel.recorder))
        for name in ("dc.solve.seconds", "task.seconds"):
            assert (serial.recorder.histograms[name].count
                    == parallel.recorder.histograms[name].count)
        spans = parallel.recorder.spans
        assert spans["task.obs-inverter"].calls == 6


class TestReport:
    def test_report_schema_and_convergence_block(self):
        result = run_campaign(_inverter_spec(4), observe=True)
        report = validate(result.report)
        assert report["schema"] == SCHEMA
        assert report["campaign"]["name"] == "obs-toy"
        assert report["campaign"]["total"] == 4
        assert report["convergence"]["solves"] == 4
        assert report["convergence"]["strategies"] == {"newton": 4}
        assert report["convergence"]["failure_causes"] == {}
        assert len(report["slowest"]) == 4
        elapsed = [entry["elapsed"] for entry in report["slowest"]]
        assert elapsed == sorted(elapsed, reverse=True)

    def test_failure_causes_grouped_by_type(self):
        records = run_campaign(
            SweepSpec.build(
                "mixed",
                [TaskPoint.make("obs-inverter", vin=0.5),
                 TaskPoint.make("no-such-kind", x=1)],
            ),
            retries=0, observe=True,
        )
        causes = records.report["convergence"]["failure_causes"]
        assert causes == {"KeyError": 1}

    def test_top_n_truncates_slowest(self):
        result = run_campaign(_inverter_spec(5), observe=True)
        report = build_report(
            result.summary, result.recorder, result.records.values(), top_n=2
        )
        assert len(report["slowest"]) == 2

    def test_write_load_round_trip(self, tmp_path):
        result = run_campaign(_inverter_spec(2), observe=True)
        path = write_report(result.report, tmp_path)
        assert path.name == REPORT_FILENAME
        assert load_report(path) == result.report
        assert load_report(tmp_path) == result.report  # directory form

    def test_validate_rejects_foreign_schema(self):
        with pytest.raises(ValueError, match="schema"):
            validate({"schema": "repro.obs.report/999"})
        with pytest.raises(ValueError, match="campaign"):
            validate({"schema": SCHEMA})

    def test_run_campaign_writes_report_and_trace(self, tmp_path):
        result = run_campaign(
            _inverter_spec(3), cache_dir=str(tmp_path), observe=True
        )
        assert result.report_path == str(tmp_path / REPORT_FILENAME)
        report = load_report(result.report_path)
        assert report["campaign"]["executed"] == 3
        events = read_trace(tmp_path / "trace.jsonl")
        kinds = [e["event"] for e in events]
        assert kinds[0] == "run-start" and kinds[-1] == "run-end"
        assert kinds.count("task") == 3
        assert all("t" in e for e in events)

    def test_rerun_reports_cache_hits_and_truncates_trace(self, tmp_path):
        run_campaign(_inverter_spec(3), cache_dir=str(tmp_path), observe=True)
        again = run_campaign(
            _inverter_spec(3), cache_dir=str(tmp_path), observe=True
        )
        report = load_report(tmp_path)
        assert report["campaign"]["cache_hits"] == 3
        assert report["campaign"]["executed"] == 0
        events = read_trace(tmp_path / "trace.jsonl")
        assert [e["event"] for e in events if e["event"] == "task"] == []
        assert any(e["event"] == "cache-hits" for e in events)
        assert again.summary.cache_hits == 3

    def test_obs_dir_separates_report_from_cache(self, tmp_path):
        cache = tmp_path / "cache"
        reports = tmp_path / "reports"
        run_campaign(
            _inverter_spec(2), cache_dir=str(cache), observe=True,
            obs_dir=str(reports),
        )
        assert (reports / REPORT_FILENAME).exists()
        assert not (cache / REPORT_FILENAME).exists()


class TestTrace:
    def test_writer_truncates_per_run(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with TraceWriter(path) as trace:
            trace.emit("run-start", total=1)
        with TraceWriter(path) as trace:
            trace.emit("run-start", total=2)
        events = read_trace(path)
        assert len(events) == 1 and events[0]["total"] == 2

    def test_reader_tolerates_torn_tail(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with TraceWriter(path) as trace:
            trace.emit("task", key="k")
        with path.open("a", encoding="utf-8") as fh:
            fh.write('{"event": "task", "key"')
        events = read_trace(path)
        assert len(events) == 1 and events[0]["key"] == "k"


class TestTraceRotation:
    """Satellite: size-based rotation bounds the daemon's trace footprint."""

    def test_rotation_keeps_every_event_across_one_rotation(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        rotations_seen = []
        with TraceWriter(path, max_bytes=300,
                         on_rotate=rotations_seen.append) as trace:
            emitted = 0
            while trace.rotations == 0:
                trace.emit("e", seq=emitted)
                emitted += 1
            trace.emit("e", seq=emitted)
            emitted += 1
        assert trace.rotated_path.exists()
        assert trace.rotations == 1 and rotations_seen == [1]
        # One rotation loses nothing: .1 + live read back as one stream.
        events = read_trace(path, include_rotated=True)
        assert [e["seq"] for e in events] == list(range(emitted))
        # Without include_rotated only the live generation is visible.
        assert len(read_trace(path)) < emitted

    def test_second_rotation_replaces_the_previous_generation(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with TraceWriter(path, max_bytes=120) as trace:
            for seq in range(40):
                trace.emit("e", seq=seq)
        assert trace.rotations >= 2
        seqs = [e["seq"] for e in read_trace(path, include_rotated=True)]
        # Only the newest two generations survive, but what survives is
        # a contiguous tail ending at the last event.
        assert seqs == list(range(seqs[0], 40))
        assert len(seqs) < 40

    def test_no_max_bytes_never_rotates(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with TraceWriter(path) as trace:
            for seq in range(200):
                trace.emit("e", seq=seq)
        assert trace.rotations == 0
        assert not trace.rotated_path.exists()
        assert len(read_trace(path, include_rotated=True)) == 200


class TestTraceContext:
    def test_new_mints_distinct_roots(self):
        a, b = TraceContext.new(), TraceContext.new()
        assert a.trace_id != b.trace_id
        assert a.parent_id is None

    def test_child_shares_trace_and_parents_to_span(self):
        root = TraceContext.new()
        child = root.child()
        grandchild = child.child()
        assert child.trace_id == root.trace_id == grandchild.trace_id
        assert child.parent_id == root.span_id
        assert grandchild.parent_id == child.span_id
        assert len({root.span_id, child.span_id, grandchild.span_id}) == 3

    def test_dict_round_trip_omits_null_parent(self):
        root = TraceContext.new()
        assert "parent_id" not in root.to_dict()
        child = root.child()
        assert TraceContext.from_dict(
            json.loads(json.dumps(child.to_dict()))
        ) == child

    def test_span_record_carries_ids_pid_and_extras(self):
        ctx = TraceContext.new().child()
        record = span_record(ctx, "task.toy", 123.456789123, 0.25,
                             status="failed", key="k1")
        assert record["trace_id"] == ctx.trace_id
        assert record["span_id"] == ctx.span_id
        assert record["parent_id"] == ctx.parent_id
        assert record["pid"] == os.getpid()
        assert record["start"] == round(123.456789123, 6)
        assert record["status"] == "failed" and record["key"] == "k1"

    def test_take_spans_pops_before_merge(self):
        rec = Recorder()
        rec.count("n")
        snapshot = rec.snapshot()
        snapshot["trace_spans"] = [{"span_id": "s"}]
        spans = take_spans(snapshot)
        assert spans == [{"span_id": "s"}]
        assert "trace_spans" not in snapshot
        # The popped snapshot merges with metrics untouched.
        fresh = Recorder()
        fresh.merge(snapshot)
        assert fresh.counters == {"n": 1}

    def test_take_spans_tolerates_missing_snapshot(self):
        assert take_spans(None) == []
        assert take_spans({}) == []
        assert take_spans({"counters": {}}) == []


def _job_events(job="j1", tenant="alice"):
    """A synthetic daemon trace: submit -> chunk -> 2 tasks -> done."""
    root = TraceContext.new()
    chunk = root.child()
    fast, slow = chunk.child(), chunk.child()
    return root, [
        {"event": "job-submit", "job": job, "tenant": tenant,
         "trace_id": root.trace_id, "span_id": root.span_id,
         "start": 100.0, "pid": 1},
        {"event": "span", **span_record(slow, "task.t", 100.3, 0.5,
                                        key="k2")},
        {"event": "span", **span_record(fast, "task.t", 100.1, 0.1,
                                        key="k1")},
        {"event": "span", **span_record(chunk, "chunk", 100.05, 0.9)},
        {"event": "job-done", "job": job, "elapsed": 1.0},
    ]


class TestStitch:
    def test_tree_structure_and_child_order(self):
        root_ctx, events = _job_events()
        trees = build_trees(events)
        assert len(trees) == 1
        root = trees[0]
        assert root.name == "job j1 tenant=alice"
        assert root.trace_id == root_ctx.trace_id
        assert root.elapsed == 1.0  # backfilled from job-done via job id
        (chunk,) = root.children
        assert chunk.name == "chunk"
        # Children sort by start even though the trace had them reversed.
        assert [c.key for c in chunk.children] == ["k1", "k2"]

    def test_orphan_spans_reattach_to_root(self):
        root_ctx, events = _job_events()
        lost_parent = TraceContext(root_ctx.trace_id, "dead",
                                   parent_id="gone")
        events.insert(2, {"event": "span",
                          **span_record(lost_parent.child(), "task.t",
                                        100.4, 0.2, key="orphan")})
        (root,) = build_trees(events)
        assert {c.name for c in root.children} == {"chunk", "task.t"}

    def test_rootless_trace_promotes_spans_to_roots(self):
        ctx = TraceContext.new()
        trees = build_trees(
            [{"event": "span", **span_record(ctx, "chunk", 1.0, 0.5)}]
        )
        assert len(trees) == 1 and trees[0].name == "chunk"

    def test_v1_events_without_ids_stitch_nothing(self):
        assert build_trees([
            {"event": "run-start", "campaign": "old", "total": 3},
            {"event": "task", "key": "k"},
            {"event": "run-end", "wall_time": 1.0},
        ]) == []

    def test_interrupted_job_marks_root_status(self):
        _root_ctx, events = _job_events()
        events[-1] = {"event": "job-interrupted", "job": "j1",
                      "elapsed": 0.7}
        (root,) = build_trees(events)
        assert root.status == "interrupted" and root.elapsed == 0.7

    def test_critical_path_follows_last_ending_child(self):
        _root_ctx, events = _job_events()
        (root,) = build_trees(events)
        path = critical_path(root)
        (chunk,) = root.children
        slow = [c for c in chunk.children if c.key == "k2"][0]
        fast = [c for c in chunk.children if c.key == "k1"][0]
        assert path == {root.span_id, chunk.span_id, slow.span_id}
        assert fast.span_id not in path

    def test_render_marks_path_and_statuses(self):
        _root_ctx, events = _job_events()
        events[1]["status"] = "crashed"
        (root,) = build_trees(events)
        text = render_tree(root)
        assert text.startswith(f"trace {root.trace_id}")
        assert "|- " in text and "`- " in text
        assert "[crashed]" in text
        assert "key=k2" in text and "500.00ms" in text
        # Every critical-path label ends with the marker.
        starred = [line for line in text.splitlines()
                   if line.rstrip().endswith("*")]
        assert len(starred) == len(critical_path(root))

    def test_slow_filter_prunes_but_keeps_ancestors(self):
        _root_ctx, events = _job_events()
        (root,) = build_trees(events)
        text = render_tree(root, slow=0.4)
        assert "key=k2" in text          # 0.5s survivor
        assert "key=k1" not in text      # 0.1s pruned
        assert "chunk" in text           # ancestor of the survivor kept
        assert "(1 span(s) faster than 0.4s hidden)" in text


class TestBucketQuantile:
    """Satellite: exact small-count quantiles instead of bucket bounds."""

    @staticmethod
    def _data(values):
        hist = Histogram(TIME_BOUNDS)
        for value in values:
            hist.observe(value)
        return hist.to_dict()

    def test_empty_histogram_is_zero(self):
        from repro.obs.render import _bucket_quantile

        assert _bucket_quantile(self._data([]), 0.99) == 0.0

    def test_single_observation_is_every_quantile(self):
        from repro.obs.render import _bucket_quantile

        data = self._data([0.0137])
        for q in (0.0, 0.5, 0.95, 0.99, 1.0):
            assert _bucket_quantile(data, q) == pytest.approx(0.0137)

    def test_two_observations_split_at_min_max(self):
        from repro.obs.render import _bucket_quantile

        data = self._data([0.002, 0.9])
        assert _bucket_quantile(data, 0.5) == pytest.approx(0.002)
        assert _bucket_quantile(data, 0.95) == pytest.approx(0.9)
        assert _bucket_quantile(data, 0.99) == pytest.approx(0.9)

    def test_identical_observations_collapse(self):
        from repro.obs.render import _bucket_quantile

        data = self._data([0.25] * 50)
        assert _bucket_quantile(data, 0.99) == pytest.approx(0.25)

    def test_tail_quantiles_clamp_to_exact_max(self):
        from repro.obs.render import _bucket_quantile

        # p99 of 10 observations targets the 10th: exactly the max, not
        # the (much larger) upper bound of the bucket it landed in.
        data = self._data([0.001 * i for i in range(1, 11)])
        assert _bucket_quantile(data, 0.99) == pytest.approx(0.010)
        assert _bucket_quantile(data, 0.01) == pytest.approx(0.001)

    def test_mid_quantile_reads_bucket_bound(self):
        from repro.obs.render import _bucket_quantile

        data = self._data([0.001 * i for i in range(1, 101)])
        p50 = _bucket_quantile(data, 0.5)
        assert data["min"] < p50 < data["max"]
        assert p50 in data["bounds"]  # a bucket upper bound, clamped

    def test_render_histograms_has_p99_column(self):
        from repro.obs.render import render_histograms

        text = render_histograms(
            {"histograms": {"task.seconds": self._data([0.1, 0.2])}}
        )
        assert "p99" in text.splitlines()[1]
        assert "200.00ms" in text


class TestPromExport:
    """Satellite+tentpole: /metrics text exposition and its parser."""

    def test_plain_counter_gets_repro_prefix_and_total(self):
        from repro.obs.export import parse_metrics, render_metrics

        text = render_metrics({"dc.solves": 7}, {})
        assert "# TYPE repro_dc_solves_total counter" in text
        assert parse_metrics(text)[("repro_dc_solves_total", ())] == 7

    def test_tenant_counters_collapse_into_labels(self):
        from repro.obs.export import parse_metrics, render_metrics

        text = render_metrics(
            {"serve.tenant.alice.jobs.submitted": 2,
             "serve.tenant.bob.jobs.submitted": 5}, {},
        )
        samples = parse_metrics(text)
        assert samples[
            ("serve_jobs_submitted_total", (("tenant", "alice"),))
        ] == 2
        assert samples[
            ("serve_jobs_submitted_total", (("tenant", "bob"),))
        ] == 5
        # One family, one TYPE line.
        assert text.count("# TYPE serve_jobs_submitted_total counter") == 1

    def test_histogram_buckets_are_cumulative_with_inf(self):
        from repro.obs.export import parse_metrics, render_metrics

        hist = Histogram(TIME_BOUNDS)
        for value in (1e-4, 2.5e-3, 2.5e-3, 0.7):
            hist.observe(value)
        text = render_metrics({}, {"task.seconds": hist.to_dict()})
        samples = parse_metrics(text)
        buckets = [
            (dict(labels)["le"], value)
            for (name, labels), value in samples.items()
            if name == "repro_task_seconds_bucket"
        ]
        values = [value for _le, value in buckets]
        assert values == sorted(values)  # cumulative, never decreasing
        assert buckets[-1][0] == "+Inf" and buckets[-1][1] == 4
        assert samples[("repro_task_seconds_count", ())] == 4
        assert samples[("repro_task_seconds_sum", ())] == pytest.approx(
            0.7051, abs=1e-6
        )

    def test_tenant_histograms_keep_tenant_label_on_buckets(self):
        from repro.obs.export import parse_metrics, render_metrics

        hist = Histogram(TIME_BOUNDS)
        hist.observe(0.01)
        text = render_metrics(
            {}, {"serve.tenant.alice.queue_wait.seconds": hist.to_dict()}
        )
        samples = parse_metrics(text)
        assert samples[
            ("serve_queue_wait_seconds_bucket",
             (("tenant", "alice"), ("le", "+Inf")))
        ] == 1
        assert samples[
            ("serve_queue_wait_seconds_count", (("tenant", "alice"),))
        ] == 1

    def test_gauges_render_verbatim(self):
        from repro.obs.export import parse_metrics, render_metrics

        text = render_metrics({}, {}, gauges=[
            ("serve_uptime_seconds", (), 12.5),
            ("serve_jobs_total", (("state", "running"),), 3.0),
        ])
        samples = parse_metrics(text)
        assert samples[("serve_uptime_seconds", ())] == 12.5
        assert samples[("serve_jobs_total", (("state", "running"),))] == 3

    def test_label_values_are_escaped(self):
        from repro.obs.export import parse_metrics, render_metrics

        text = render_metrics({}, {}, gauges=[
            ("g", (("tenant", 'a"b\\c'),), 1.0),
        ])
        ((name, labels),) = list(parse_metrics(text))
        assert name == "g"

    def test_conflicting_family_kinds_rejected(self):
        from repro.obs.export import render_metrics

        with pytest.raises(ValueError, match="declared both"):
            render_metrics(
                {"x": 1}, {}, gauges=[("repro_x_total", (), 1.0)]
            )

    def test_parser_rejects_untyped_and_malformed_samples(self):
        from repro.obs.export import parse_metrics

        with pytest.raises(ValueError, match="no # TYPE"):
            parse_metrics("mystery_metric 1\n")
        with pytest.raises(ValueError, match="malformed value"):
            parse_metrics("# TYPE bad gauge\nbad oops\n")
        with pytest.raises(ValueError, match="malformed label"):
            parse_metrics('# TYPE bad gauge\nbad{tenant=alice} 1\n')


class TestRenderTop:
    """The ``repro top`` frame is a pure function of two stats payloads."""

    @staticmethod
    def _stats(executed=100, uptime=30.0, draining=False, pump=True):
        return {
            "uptime_s": uptime,
            "draining": draining,
            "workers": {"jobs": 2, "mode": "pool", "pump_alive": pump},
            "jobs": {"running": 1, "done": 4},
            "queued_points": 7,
            "queued_by_tenant": {"alice": 7},
            "tenants": ["alice"],
            "counters": {
                "serve.points.total": 200,
                "serve.points.executed": executed,
                "serve.points.cache_hits": 60,
                "serve.points.deduped": 20,
                "serve.points.failed": 2,
                "serve.tenant.alice.points.executed": executed,
                "serve.tenant.alice.jobs.submitted": 5,
                "serve.tenant.alice.jobs.completed": 4,
                "serve.tenant.alice.points.failed": 2,
            },
        }

    def test_first_frame_renders_totals_without_rates(self):
        from repro.obs.render import render_top

        frame = render_top(self._stats())
        assert "repro top | uptime 30s | workers 2 (pool, pump alive)" in frame
        assert "jobs: 4 done, 1 running" in frame
        assert "200 total, 100 executed, 80 cached/deduped (40% hit)" in frame
        assert "queued 7" in frame
        assert "alice" in frame and "-" in frame  # no rate yet

    def test_rates_come_from_counter_deltas(self):
        from repro.obs.render import render_top

        frame = render_top(self._stats(executed=150),
                           prev=self._stats(executed=100), dt=10.0)
        assert "5.0/s" in frame

    def test_draining_and_dead_pump_are_loud(self):
        from repro.obs.render import render_top

        frame = render_top(self._stats(draining=True, pump=False))
        assert "| DRAINING" in frame
        assert "pump STOPPED" in frame

    def test_no_tenants_yet(self):
        from repro.obs.render import render_top

        frame = render_top({"counters": {}})
        assert "tenants: none yet" in frame


class TestCampaignTraceTrees:
    """Tentpole: one-shot campaign traces stitch into one causal tree."""

    def test_serial_run_stitches_one_tree(self, tmp_path):
        run_campaign(_inverter_spec(4), cache_dir=str(tmp_path),
                     observe=True, chunksize=2)
        events = read_trace(tmp_path / "trace.jsonl")
        trees = build_trees(events)
        assert len(trees) == 1
        root = trees[0]
        assert root.name == "run obs-toy"
        assert root.elapsed is not None  # backfilled from run-end
        chunks = root.children
        assert [c.name for c in chunks] == ["chunk", "chunk"]
        tasks = [t for c in chunks for t in c.children]
        assert len(tasks) == 4
        assert all(t.name == "task.obs-inverter" for t in tasks)
        assert all(t.status == "ok" for t in tasks)
        assert len({n.trace_id for n in root.walk()}) == 1
        assert critical_path(root) <= {n.span_id for n in root.walk()}

    def test_cached_rerun_has_no_task_spans(self, tmp_path):
        run_campaign(_inverter_spec(3), cache_dir=str(tmp_path),
                     observe=True)
        run_campaign(_inverter_spec(3), cache_dir=str(tmp_path),
                     observe=True)
        (root,) = build_trees(read_trace(tmp_path / "trace.jsonl"))
        assert root.children == []  # everything served from cache

    def test_observe_off_writes_no_ids(self, tmp_path):
        run_campaign(_inverter_spec(2), cache_dir=str(tmp_path),
                     observe=False)
        assert not (tmp_path / "trace.jsonl").exists()

    @pytest.mark.slow
    def test_pool_spans_stitch_across_three_processes(self, tmp_path):
        """The acceptance bar: one trace_id spanning the parent and at
        least two distinct pool-worker processes."""
        tasks = [TaskPoint.make("obs-sleep", dt=0.05, i=i)
                 for i in range(8)]
        spec = SweepSpec.build("obs-pool", tasks)
        run_campaign(spec, jobs=2, chunksize=1,
                     cache_dir=str(tmp_path), observe=True)
        (root,) = build_trees(read_trace(tmp_path / "trace.jsonl"))
        spans = list(root.walk())
        assert len({n.trace_id for n in spans}) == 1
        task_spans = [n for n in spans if n.name == "task.obs-sleep"]
        assert len(task_spans) == 8
        pids = {n.pid for n in spans if n.pid is not None}
        assert len(pids) >= 3, pids  # parent + both pool workers

    @pytest.mark.slow
    def test_tracing_leaves_metrics_invariant(self):
        """Spans ride outside the recorder snapshot: jobs=2 counters and
        deterministic histograms still equal the serial run's."""
        serial = run_campaign(_inverter_spec(6), observe=True)
        parallel = run_campaign(_inverter_spec(6), jobs=2, observe=True)
        assert serial.recorder.counters == parallel.recorder.counters
        assert "trace_spans" not in serial.recorder.counters
        assert (_deterministic_histograms(serial.recorder)
                == _deterministic_histograms(parallel.recorder))
