"""VTC and butterfly/SNM analysis of the 6T cell."""

import numpy as np
import pytest

from repro.cell import DEFAULT_CELL, butterfly_curves, inverter_vtc, snm_ds
from repro.cell.vtc import vtc_pair
from repro.devices import CellVariation

SYM = CellVariation.symmetric()


def _models(variation=SYM, corner="typical", temp=25.0):
    return DEFAULT_CELL.models(variation, corner, temp)


class TestInverterVTC:
    def test_monotone_decreasing(self):
        m = _models()
        grid = np.linspace(0, 1.1, 80)
        out = inverter_vtc(grid, 1.1, m["mpcc1"], m["mncc1"], m["mncc3"])
        assert np.all(np.diff(out) <= 1e-9)

    def test_rails(self):
        m = _models()
        out = inverter_vtc(np.array([0.0, 1.1]), 1.1, m["mpcc1"], m["mncc1"], m["mncc3"])
        assert out[0] > 1.05  # input low -> output near VDD
        assert out[1] < 0.02  # input high -> output near ground

    def test_pass_gate_leak_lowers_high_output(self):
        """At retention-level supply the grounded-BL leak drags node S down."""
        m = _models()
        vdd = 0.15
        with_pass = inverter_vtc(np.array([0.0]), vdd, m["mpcc1"], m["mncc1"], m["mncc3"])[0]
        # Replace the pass gate with a negligible-width one.
        weak_pass = DEFAULT_CELL.models(SYM)["mncc3"]
        import dataclasses
        narrow = dataclasses.replace(weak_pass.params, w=1e-12)
        from repro.devices.mosfet import MosfetModel
        no_pass = MosfetModel(narrow, weak_pass.corner, 25.0)
        without = inverter_vtc(np.array([0.0]), vdd, m["mpcc1"], m["mncc1"], no_pass)[0]
        assert with_pass < without

    def test_vtc_pair_shapes(self):
        grid = np.linspace(0, 1.1, 40)
        s_of_sb, sb_of_s = vtc_pair(grid, 1.1, _models())
        assert s_of_sb.shape == sb_of_s.shape == (40,)
        # Symmetric cell: the two curves coincide.
        assert np.allclose(s_of_sb, sb_of_s, atol=1e-6)


class TestSNM:
    def test_symmetric_cell_equal_lobes(self):
        snm1, snm0 = snm_ds(SYM, 1.1)
        assert snm1 == pytest.approx(snm0, abs=1e-9)
        assert 0.3 < snm1 < 0.55  # healthy hold SNM at full supply

    def test_snm_shrinks_with_supply(self):
        values = [snm_ds(SYM, v)[0] for v in (1.1, 0.6, 0.3, 0.1)]
        assert values == sorted(values, reverse=True)

    def test_snm_negative_below_retention(self):
        snm1, snm0 = snm_ds(SYM, 0.03)
        assert snm1 < 0 and snm0 < 0

    def test_mirrored_variation_swaps_lobes(self):
        v = CellVariation(mpcc1=-3, mncc1=-3)
        snm1, snm0 = snm_ds(v, 0.5)
        m1, m0 = snm_ds(v.mirrored(), 0.5)
        assert snm1 == pytest.approx(m0, abs=2e-3)
        assert snm0 == pytest.approx(m1, abs=2e-3)

    def test_degrading_variation_shrinks_one_lobe(self):
        """CS2-style variation weakens stored-1 far more than stored-0."""
        base1, base0 = snm_ds(SYM, 0.5)
        v1, v0 = snm_ds(CellVariation(mpcc1=-3, mncc1=-3), 0.5)
        assert v1 < base1 - 0.02
        assert v0 >= base0 - 0.01


class TestButterfly:
    def test_curve_bounds(self):
        curves = butterfly_curves(SYM, 0.8)
        for key in ("s_a", "sb_a", "s_b", "sb_b"):
            assert np.all(curves[key] >= -1e-9)
            assert np.all(curves[key] <= 0.8 + 1e-9)

    def test_three_crossings_when_bistable(self):
        """The two VTCs cross three times (two stable + metastable)."""
        curves = butterfly_curves(SYM, 1.1, points=400)
        # Interpolate curve B onto curve A's s-grid and count sign changes.
        s = curves["s_a"]
        sb_a = curves["sb_a"]
        sb_grid = curves["sb_b"]
        s_b = curves["s_b"]
        sb_b_on_a = np.interp(s, s_b[::-1], sb_grid[::-1])
        signs = np.sign(sb_a - sb_b_on_a)
        crossings = np.count_nonzero(np.diff(signs))
        assert crossings == 3
