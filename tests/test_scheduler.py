"""The pure-logic Scheduler: placement, fair share, rate limits, failure
policy - all exercised as plain function calls with injected clocks, no
processes, no sleeping, no sockets."""

import pytest

from repro.campaign import (
    Chunk,
    RateLimit,
    RespawnBudgetExceeded,
    Scheduler,
)
from repro.campaign.scheduler import BackoffPolicy, chunk_points
from repro.campaign.spec import TaskPoint


def points(*xs):
    return [TaskPoint.make("toy-sched", x=x) for x in xs]


def chunk(*xs, tenant="default", meta=None):
    return Chunk.make(points(*xs), tenant, meta)


def drain_keys(scheduler, now=0.0, limit=100):
    out = []
    for _ in range(limit):
        c = scheduler.next_chunk(now)
        if c is None:
            break
        out.append(c)
    return out


# --- intake and placement -------------------------------------------------


class TestPlacement:
    def test_empty_scheduler_has_nothing(self):
        s = Scheduler()
        assert not s.has_pending
        assert s.next_chunk() is None
        assert s.next_suspect() is None
        assert s.pending() == 0

    def test_fifo_within_one_tenant(self):
        s = Scheduler()
        s.add_all([chunk(1), chunk(2), chunk(3)])
        got = [c.points[0].params[0][1] for c in drain_keys(s)]
        assert got == [1, 2, 3]

    def test_requeue_front_jumps_the_queue(self):
        s = Scheduler()
        s.add_all([chunk(1), chunk(2)])
        s.requeue_front(chunk(9))
        got = [c.points[0].params[0][1] for c in drain_keys(s)]
        assert got == [9, 1, 2]

    def test_pending_counts_points_not_chunks(self):
        s = Scheduler()
        s.add(chunk(1, 2, 3, tenant="a"))
        s.add(chunk(4, tenant="b"))
        assert s.pending() == 4
        assert s.pending("a") == 3
        assert s.pending("b") == 1
        assert s.pending("nobody") == 0

    def test_fair_share_interleaves_tenants(self):
        # Tenant "hog" dumps 6 chunks, "small" adds 2: strict round-robin
        # means small's work never waits behind the hog's backlog.
        s = Scheduler()
        for x in range(6):
            s.add(chunk(x, tenant="hog"))
        s.add(chunk(100, tenant="small"))
        s.add(chunk(101, tenant="small"))
        order = [c.tenant for c in drain_keys(s)]
        assert order[:4] == ["hog", "small", "hog", "small"]
        assert order[4:] == ["hog"] * 4

    def test_round_robin_cursor_survives_empty_queues(self):
        s = Scheduler()
        s.add(chunk(1, tenant="a"))
        s.add(chunk(2, tenant="b"))
        s.add(chunk(3, tenant="c"))
        assert s.next_chunk().tenant == "a"
        # b's queue drains; the cursor must skip it without stalling.
        assert s.next_chunk().tenant == "b"
        s.add(chunk(4, tenant="a"))
        assert s.next_chunk().tenant == "c"
        assert s.next_chunk().tenant == "a"
        assert s.next_chunk() is None

    def test_tenants_lists_registration_order(self):
        s = Scheduler()
        s.add(chunk(1, tenant="z"))
        s.add(chunk(2, tenant="a"))
        assert s.tenants == ["z", "a"]


# --- rate limits (fake clock throughout) ----------------------------------


class TestRateLimits:
    def test_limited_tenant_is_skipped_not_blocking_others(self):
        s = Scheduler()
        s.set_rate_limit("slow", rate_per_s=1.0, burst=1.0)
        s.add(chunk(1, tenant="slow"))
        s.add(chunk(2, tenant="slow"))
        s.add(chunk(3, tenant="fast"))
        s.add(chunk(4, tenant="fast"))
        got = [(c.tenant, c.points[0].params[0][1])
               for c in drain_keys(s, now=0.0)]
        # slow's burst token covers one dispatch; fast flows freely.
        assert got == [("slow", 1), ("fast", 3), ("fast", 4)]
        assert s.pending("slow") == 1

    def test_bucket_refills_with_the_injected_clock(self):
        s = Scheduler()
        s.set_rate_limit("t", rate_per_s=2.0, burst=1.0)
        s.add_all([chunk(1, tenant="t"), chunk(2, tenant="t"),
                   chunk(3, tenant="t")])
        assert s.next_chunk(now=10.0) is not None
        assert s.next_chunk(now=10.0) is None  # bucket empty
        assert s.next_chunk(now=10.2) is None  # 0.4 tokens: still short
        assert s.next_chunk(now=10.6) is not None  # >= 1 token again
        assert s.next_chunk(now=11.1) is not None

    def test_next_ready_in_reports_the_soonest_refill(self):
        s = Scheduler()
        s.set_rate_limit("t", rate_per_s=2.0, burst=1.0)
        s.add_all([chunk(1, tenant="t"), chunk(2, tenant="t")])
        assert s.next_chunk(now=0.0) is not None
        wait = s.next_ready_in(now=0.0)
        assert wait == pytest.approx(0.5)

    def test_next_ready_in_none_when_runnable_or_idle(self):
        s = Scheduler()
        assert s.next_ready_in(0.0) is None  # no work at all
        s.add(chunk(1, tenant="free"))
        assert s.next_ready_in(0.0) is None  # runnable right now

    def test_rate_limit_bucket_arithmetic(self):
        limit = RateLimit(rate_per_s=10.0, burst=3.0)
        assert limit.try_take(0.0)
        assert limit.try_take(0.0)
        assert limit.try_take(0.0)
        assert not limit.try_take(0.0)
        assert limit.ready_in(0.0) == pytest.approx(0.1)
        assert limit.try_take(0.1)


# --- failure policy: bisection, suspects, conviction ----------------------


class TestFailurePolicy:
    def test_lost_multipoint_chunk_is_bisected_front_of_queue(self):
        s = Scheduler()
        s.add(chunk(9))  # pre-existing work stays behind the requeue
        lost = chunk(1, 2, 3, 4)
        s.report_lost([lost], blamable=True)
        first = s.next_chunk()
        second = s.next_chunk()
        assert [p.params[0][1] for p in first.points] == [1, 2]
        assert [p.params[0][1] for p in second.points] == [3, 4]
        assert s.next_chunk().points[0].params[0][1] == 9

    def test_singleton_losses_accumulate_only_when_blamable(self):
        s = Scheduler()
        poison = chunk(7)
        key = poison.points[0].key
        s.report_lost([poison], blamable=False)  # innocent bystander
        assert s.losses(key) == 0
        assert not s.has_suspects
        s.next_chunk()  # it went back to the queue
        s.report_lost([poison], blamable=True)
        assert s.losses(key) == 1
        assert not s.has_suspects  # one loss: retried normally

    def test_repeat_offender_graduates_to_isolation(self):
        s = Scheduler()
        poison = chunk(7)
        s.report_lost([poison], blamable=True)
        s.next_chunk()  # first loss retries through the normal queue
        s.report_lost([poison], blamable=True)
        assert s.has_suspects
        assert s.next_chunk() is None  # not in the regular queues
        suspect = s.next_suspect()
        assert suspect.points[0].key == poison.points[0].key
        assert s.next_suspect() is None

    def test_convict_or_bisect_convicts_singletons(self):
        s = Scheduler()
        guilty = s.convict_or_bisect(chunk(5))
        assert guilty is not None and guilty.params[0][1] == 5
        assert not s.has_pending  # nothing requeued

    def test_convict_or_bisect_splits_multipoint_chunks(self):
        s = Scheduler()
        assert s.convict_or_bisect(chunk(1, 2)) is None
        halves = drain_keys(s)
        assert [len(h) for h in halves] == [1, 1]

    def test_bisection_preserves_tenant_and_meta(self):
        s = Scheduler()
        marker = object()
        s.report_lost([chunk(1, 2, tenant="t9", meta=marker)], blamable=True)
        for half in drain_keys(s):
            assert half.tenant == "t9"
            assert half.meta is marker


# --- respawn budget -------------------------------------------------------


class TestRespawnBudget:
    def test_cap_raises_past_the_budget(self):
        s = Scheduler()
        s.set_respawn_cap(2)
        assert s.note_respawn() == 1
        assert s.note_respawn() == 2
        with pytest.raises(RespawnBudgetExceeded):
            s.note_respawn()

    def test_uncapped_by_default(self):
        s = Scheduler()
        for _ in range(50):
            s.note_respawn()
        assert s.respawns == 50

    def test_default_cap_formula(self):
        s = Scheduler()
        assert s.default_respawn_cap(0) == 10
        assert s.default_respawn_cap(25) == 110


# --- chunking policy ------------------------------------------------------


class TestChunkPoints:
    def test_serial_gets_singleton_chunks(self):
        got = chunk_points(points(*range(5)), jobs=1)
        assert [len(c) for c in got] == [1] * 5

    def test_explicit_chunksize_wins(self):
        got = chunk_points(points(*range(5)), jobs=1, chunksize=2)
        assert [len(c) for c in got] == [2, 2, 1]

    def test_pool_targets_four_chunks_per_worker(self):
        got = chunk_points(points(*range(64)), jobs=2)
        assert all(len(c) == 8 for c in got)

    def test_remote_only_daemon_still_chunks(self):
        # jobs=0 (no local pool, remote workers only) must not divide
        # by zero; it chunks as if feeding a small pool.
        got = chunk_points(points(*range(20)), jobs=0)
        assert [p for c in got for p in c] == points(*range(20))
        assert all(1 <= len(c) <= 8 for c in got)

    def test_preserves_order_and_points(self):
        pts = points(*range(7))
        got = chunk_points(pts, jobs=4)
        flat = [p for c in got for p in c]
        assert flat == pts


# --- remote workers: leases, heartbeats, expiry ---------------------------


class TestWorkerRegistry:
    def test_register_mints_unique_live_workers(self):
        s = Scheduler()
        a = s.register_worker(0.0, name="alpha", pid=101, host="h1")
        b = s.register_worker(0.0, name="beta")
        assert a.id != b.id
        assert a.name == "alpha" and a.pid == 101 and a.host == "h1"
        assert s.worker(a.id) is a
        assert s.worker_states(0.0) == {a.id: "live", b.id: "live"}

    def test_states_degrade_with_silence(self):
        s = Scheduler(lease_ttl_s=10.0)
        w = s.register_worker(0.0)
        assert s.worker_states(10.0)[w.id] == "live"
        assert s.worker_states(11.0)[w.id] == "suspect"
        assert s.worker_states(30.0)[w.id] == "suspect"
        assert s.worker_states(31.0)[w.id] == "lost"

    def test_touch_refreshes_and_rejects_unknown(self):
        s = Scheduler(lease_ttl_s=10.0)
        w = s.register_worker(0.0)
        assert s.touch_worker(w.id, 25.0) is True
        assert s.worker_states(30.0)[w.id] == "live"
        assert s.touch_worker("w99-dead", 0.0) is False


class TestLeases:
    def test_lease_checks_out_and_complete_settles(self):
        s = Scheduler(lease_ttl_s=10.0)
        w = s.register_worker(0.0)
        s.add(chunk(1, 2))
        lease = s.lease(w.id, 1.0)
        assert lease is not None
        assert [p.params[0][1] for p in lease.chunk.points] == [1, 2]
        assert s.leased == 2
        assert s.next_chunk(1.0) is None  # checked out, not queued
        settled = s.complete_lease(lease.id, 2.0)
        assert settled is lease
        assert s.leased == 0
        assert w.leases_granted == 1 and w.leases_completed == 1

    def test_lease_unknown_worker_or_empty_queue_is_none(self):
        s = Scheduler()
        assert s.lease("w99-dead", 0.0) is None
        w = s.register_worker(0.0)
        assert s.lease(w.id, 0.0) is None  # nothing queued

    def test_heartbeat_extends_deadline(self):
        s = Scheduler(lease_ttl_s=10.0)
        w = s.register_worker(0.0)
        s.add(chunk(1))
        lease = s.lease(w.id, 0.0)
        assert s.heartbeat(lease.id, 9.0) is lease
        assert s.expire_leases(15.0) == []  # alive past the original TTL
        assert s.expire_leases(19.5) == [lease]

    def test_expiry_requeues_with_blame_and_graduates(self):
        s = Scheduler(lease_ttl_s=10.0)
        w = s.register_worker(0.0)
        s.add(chunk(7))
        first = s.lease(w.id, 0.0)
        assert s.expire_leases(11.0) == [first]
        assert w.leases_expired == 1
        # First expiry retries through the normal queue...
        second = s.lease(w.id, 12.0)
        assert second is not None
        assert s.expire_leases(23.0) == [second]
        # ...the second conviction isolates the point.
        assert s.next_chunk(24.0) is None
        assert s.has_suspects
        suspect = s.next_suspect()
        assert suspect.points[0].params[0][1] == 7

    def test_expired_multipoint_chunk_bisects(self):
        s = Scheduler(lease_ttl_s=10.0)
        w = s.register_worker(0.0)
        s.add(chunk(1, 2, 3, 4))
        s.lease(w.id, 0.0)
        s.expire_leases(11.0)
        halves = drain_keys(s, now=12.0)
        assert [len(h) for h in halves] == [2, 2]

    def test_abandon_is_blame_free(self):
        s = Scheduler(lease_ttl_s=10.0)
        w = s.register_worker(0.0)
        s.add(chunk(5))
        lease = s.lease(w.id, 0.0)
        key = lease.chunk.points[0].key
        assert s.abandon_lease(lease.id, 1.0) is lease
        assert s.losses(key) == 0  # a drain is not a crash
        assert w.leases_abandoned == 1
        again = s.next_chunk(2.0)
        assert again.points[0].key == key

    def test_late_completion_is_rejected(self):
        s = Scheduler(lease_ttl_s=10.0)
        w = s.register_worker(0.0)
        s.add(chunk(1))
        lease = s.lease(w.id, 0.0)
        s.expire_leases(11.0)
        assert s.complete_lease(lease.id, 12.0) is None
        assert s.abandon_lease(lease.id, 12.0) is None

    def test_prune_drops_only_matching_queued_chunks(self):
        s = Scheduler()
        s.add(chunk(1, 2, tenant="keep"))
        s.add(chunk(3, tenant="drop"))
        removed = s.prune(lambda c: c.tenant == "drop")
        assert removed == 1
        kept = drain_keys(s)
        assert len(kept) == 1 and kept[0].tenant == "keep"


# --- backoff determinism --------------------------------------------------


class TestBackoff:
    def test_zero_base_disables_delays(self):
        policy = BackoffPolicy(base_s=0.0)
        assert policy.delay("k", 1) == 0.0
        assert policy.delay("k", 9) == 0.0

    def test_growth_is_capped_and_jitter_bounded(self):
        policy = BackoffPolicy(base_s=0.1, factor=2.0, cap_s=1.0)
        for attempt in range(1, 8):
            delay = policy.delay("some-key", attempt)
            raw = min(1.0, 0.1 * 2.0 ** (attempt - 1))
            assert 0.5 * raw <= delay < raw + 1e-12

    def test_deterministic_per_key_and_attempt(self):
        policy = BackoffPolicy()
        assert policy.delay("k1", 3) == policy.delay("k1", 3)
        # Decorrelated across keys: not all keys share one jitter.
        delays = {policy.delay(f"k{i}", 1) for i in range(16)}
        assert len(delays) > 1
