"""Batched sweeps (`solve_dc_batch`), warm-started `SweepSession`s,
geometric `log_bisect`, and assembly-backend selection."""

import numpy as np
import pytest

from repro.cell.design import DEFAULT_CELL
from repro.devices import CORNERS, MosfetModel, nmos_params, pmos_params
from repro.devices.variation import CellVariation
from repro.spice import (
    Circuit,
    PulseVoltageSource,
    SweepSession,
    dc_sweep,
    default_backend,
    log_bisect,
    solve_dc,
    solve_dc_batch,
    using_backend,
)
from repro.spice.compiled import compiled_plan
from repro.spice.dc import _assign_branch_indices


def _inverter(vdd=1.1):
    corner = CORNERS["typical"]
    circuit = Circuit("sweep-inverter")
    circuit.vsource("vdd", "vdd", "0", vdd)
    circuit.vsource("vin", "in", "0", 0.0)
    circuit.mosfet(
        "mp", "out", "in", "vdd", MosfetModel(pmos_params("mp", 240e-9), corner, 25.0)
    )
    circuit.mosfet(
        "mn", "out", "in", "0", MosfetModel(nmos_params("mn", 120e-9), corner, 25.0)
    )
    return circuit


def _hold_cell(vdd=1.1):
    return DEFAULT_CELL.build_hold_circuit(vdd, CellVariation.symmetric())


class TestSolveDcBatch:
    def test_matches_sequential_sweep_on_inverter(self):
        """Batch and sequential sweeps take different Newton paths, so they
        agree only to the residual-tolerance ball: with the output node's
        small-signal conductance ~1e-4 S, |r| < 5e-12 A leaves ~5e-8 V of
        legitimate slack."""
        values = list(np.linspace(0.0, 1.1, 23))
        batch = solve_dc_batch(_inverter(), "vin", values)
        sequential = dc_sweep(_inverter(), "vin", values)
        assert len(batch) == len(sequential) == 23
        for b, s in zip(batch, sequential):
            assert abs(b.voltage("out") - s.voltage("out")) < 1e-7

    def test_cell_vdd_sweep_matches_sequential(self):
        """64-point supply sweep of the bistable hold cell.

        The sweep floor stays above the cell's retention voltage: below it
        the cell flips and the two solver paths may legitimately land on
        different branches of the bistable characteristic.  Approaching the
        flip region the Jacobian's condition number climbs toward ~1e9, so
        paths that both satisfy the residual tolerance can differ by
        ~cond * tol_i in state space; the tolerance is conditioning-aware,
        not a bug allowance.
        """
        values = list(np.linspace(1.1, 0.35, 64))
        batch = solve_dc_batch(_hold_cell(), "vddc", values)
        sequential = dc_sweep(_hold_cell(), "vddc", values)
        for b, s in zip(batch, sequential):
            assert abs(b.voltage("s") - s.voltage("s")) < 2e-5
            assert abs(b.voltage("sb") - s.voltage("sb")) < 2e-5

    def test_restores_source_value(self):
        circuit = _inverter()
        circuit.element("vin").voltage = 0.3
        solve_dc_batch(circuit, "vin", [0.1, 0.9])
        assert circuit.element("vin").voltage == 0.3

    def test_empty_values(self):
        assert solve_dc_batch(_inverter(), "vin", []) == []

    def test_single_value_equals_solve_dc(self):
        circuit = _inverter()
        circuit.element("vin").voltage = 0.55
        expected = solve_dc(circuit).voltage("out")
        (solution,) = solve_dc_batch(circuit, "vin", [0.55])
        assert solution.voltage("out") == pytest.approx(expected, abs=1e-12)

    def test_non_vsource_rejected(self):
        with pytest.raises(TypeError):
            solve_dc_batch(_inverter(), "mp", [0.1])

    def test_reference_backend_degrades_to_sequential(self):
        values = [0.2, 0.55, 0.9]
        with using_backend("reference"):
            solutions = solve_dc_batch(_inverter(), "vin", values)
        expected = dc_sweep(_inverter(), "vin", values)
        for got, want in zip(solutions, expected):
            assert abs(got.voltage("out") - want.voltage("out")) < 1e-9

    def test_timed_source_falls_back_to_sequential(self):
        """A VoltageSource subclass has no compiled rhs row to override;
        the batch API must still return correct per-point solutions."""
        circuit = _inverter()
        circuit.add(
            PulseVoltageSource("vp", circuit.node("aux"), 0, v1=0.1, v2=1.0)
        )
        circuit.resistor("raux", "aux", "out", 1e6)
        values = [0.2, 0.8]
        solutions = solve_dc_batch(circuit, "vp", values)
        expected = dc_sweep(circuit, "vp", values)
        for got, want in zip(solutions, expected):
            assert abs(got.voltage("out") - want.voltage("out")) < 1e-9


class TestSweepSession:
    def test_solve_counts_and_is_deterministic(self):
        session = SweepSession(_inverter())
        first = session.solve()
        second = session.solve()
        assert session.solves == 2
        np.testing.assert_allclose(first.x, second.x, atol=1e-12)

    def test_sweep_returns_all_points(self):
        session = SweepSession(_inverter())
        solutions = session.sweep("vin", [0.0, 0.55, 1.1])
        assert len(solutions) == 3 and session.solves == 3
        outs = [s.voltage("out") for s in solutions]
        assert outs[0] > outs[1] > outs[2]  # inverting characteristic

    def test_bisect_finds_switching_threshold(self):
        vdd = 1.1
        session = SweepSession(_inverter(vdd))
        vm = session.bisect(
            "vin", 0.0, vdd,
            lambda sol: sol.voltage("out") < vdd / 2, steps=30,
        )
        assert 0.1 < vm < vdd - 0.1
        session.circuit.element("vin").voltage = vm
        assert session.solve().voltage("out") == pytest.approx(vdd / 2, abs=1e-3)

    def test_bisect_restores_source_value(self):
        session = SweepSession(_inverter())
        session.circuit.element("vin").voltage = 0.42
        session.bisect("vin", 0.0, 1.1, lambda sol: sol.voltage("out") < 0.55, steps=4)
        assert session.circuit.element("vin").voltage == 0.42

    def test_bisect_rejects_non_vsource(self):
        session = SweepSession(_inverter())
        with pytest.raises(TypeError):
            session.bisect("mn", 0.0, 1.0, lambda sol: True)

    def test_reset_drops_warm_start(self):
        session = SweepSession(_inverter())
        session.solve()
        session.reset()
        assert session.solve() is not None  # cold restart still converges

    def test_session_honours_reference_backend(self):
        compiled = SweepSession(_inverter()).solve()
        reference = SweepSession(_inverter(), backend="reference").solve()
        n_nodes = 3
        assert np.abs(compiled.x[:n_nodes] - reference.x[:n_nodes]).max() < 1e-9


class TestLogBisect:
    def test_converges_to_threshold_from_above(self):
        target = 3.7e4
        edge = log_bisect(lambda r: r >= target, 10.0, 1e8, steps=60)
        assert edge == pytest.approx(target, rel=1e-9)
        assert edge >= target  # the returned edge satisfies the predicate

    def test_rejects_bad_brackets(self):
        with pytest.raises(ValueError):
            log_bisect(lambda r: True, 0.0, 10.0)
        with pytest.raises(ValueError):
            log_bisect(lambda r: True, 10.0, 5.0)

    def test_matches_inline_sqrt_loop(self):
        """Same arithmetic as the loop it replaced in regulator/timing.py."""
        import math

        target = 1.234e6
        lo, hi = 1.0, 500e6
        for _ in range(40):
            mid = math.sqrt(lo * hi)
            if mid >= target:
                hi = mid
            else:
                lo = mid
        assert log_bisect(lambda r: r >= target, 1.0, 500e6, steps=40) == hi


class TestBackendSelection:
    def test_using_backend_scopes_the_default(self):
        before = default_backend()
        with using_backend("reference"):
            assert default_backend() == "reference"
        assert default_backend() == before

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            solve_dc(_inverter(), backend="magic")

    def test_env_variable_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_SPICE_BACKEND", "reference")
        assert default_backend() == "reference"


class TestPlanCaching:
    def test_plan_reused_for_unchanged_topology(self):
        circuit = _inverter()
        _assign_branch_indices(circuit)
        plan = compiled_plan(circuit)
        assert compiled_plan(circuit) is plan

    def test_adding_an_element_invalidates_the_plan(self):
        circuit = _inverter()
        _assign_branch_indices(circuit)
        plan = compiled_plan(circuit)
        circuit.resistor("rload", "out", "0", 1e6)
        _assign_branch_indices(circuit)
        assert compiled_plan(circuit) is not plan
