"""Semi-analytic timing layer (Df8 activation delay / Df11 undershoot)."""

import pytest

from repro.devices.pvt import PVT
from repro.regulator.defects import DEFECTS, TimingMode
from repro.regulator.timing import (
    activation_failure,
    min_resistance_timing,
    settle_time,
    time_to_reach,
    voltage_after,
)

HOT = PVT("fs", 1.0, 125.0)
COLD = PVT("typical", 1.1, -30.0)


class TestSettleTime:
    def test_linear_in_resistance(self):
        a = settle_time(1e6, TimingMode.ACTIVATION_DELAY)
        b = settle_time(2e6, TimingMode.ACTIVATION_DELAY)
        assert b == pytest.approx(2 * a)

    def test_reference_line_slower_than_bias_line(self):
        """Bigger Vref-line capacitance: Df11 fails at lower R than Df8."""
        assert settle_time(1e6, TimingMode.UNDERSHOOT) > settle_time(
            1e6, TimingMode.ACTIVATION_DELAY
        )


class TestDischargeProfile:
    def test_voltage_monotone_in_time(self):
        times = [0.0, 1e-6, 1e-5, 1e-4, 1e-3]
        voltages = [voltage_after(t, HOT) for t in times]
        assert voltages[0] == pytest.approx(HOT.vdd)
        assert voltages == sorted(voltages, reverse=True)

    def test_time_voltage_inverse(self):
        t = time_to_reach(0.6, HOT)
        assert voltage_after(t, HOT) == pytest.approx(0.6, abs=0.01)

    def test_cold_rail_decays_slower(self):
        """Leakage-driven discharge: orders of magnitude slower when cold."""
        assert time_to_reach(0.8, COLD) > 100 * time_to_reach(0.8, HOT)

    def test_boundary_values(self):
        assert time_to_reach(HOT.vdd + 0.1, HOT) == 0.0
        assert voltage_after(0.0, HOT) == HOT.vdd


class TestActivationFailure:
    def test_monotone_in_resistance(self):
        drv = 0.70
        fails = [
            activation_failure(r, drv, HOT, TimingMode.ACTIVATION_DELAY)
            for r in (1e3, 1e6, 1e8, 5e8)
        ]
        # Once failing, stays failing as R grows.
        first_fail = fails.index(True) if True in fails else len(fails)
        assert all(fails[first_fail:])

    def test_small_resistance_is_safe(self):
        assert not activation_failure(100.0, 0.70, HOT, TimingMode.ACTIVATION_DELAY)

    def test_short_ds_time_masks_failure(self):
        """An eventual flip needs enough DS dwell time (Section V)."""
        r = 2e8
        long_ds = activation_failure(r, 0.70, HOT, TimingMode.ACTIVATION_DELAY, ds_time=1e-3)
        short_ds = activation_failure(r, 0.70, HOT, TimingMode.ACTIVATION_DELAY, ds_time=1e-9)
        assert long_ds and not short_ds


class TestMinResistance:
    def test_bisection_brackets_threshold(self):
        drv = 0.70
        r = min_resistance_timing(DEFECTS[8], drv, HOT)
        assert r is not None
        assert activation_failure(r * 1.05, drv, HOT, TimingMode.ACTIVATION_DELAY)
        assert not activation_failure(r * 0.95, drv, HOT, TimingMode.ACTIVATION_DELAY)

    def test_df11_fails_at_lower_resistance_than_df8(self):
        drv = 0.70
        r8 = min_resistance_timing(DEFECTS[8], drv, HOT)
        r11 = min_resistance_timing(DEFECTS[11], drv, HOT)
        assert r11 < r8

    def test_none_when_open_line_is_safe(self):
        """Cold + low DRV: the rail never decays far enough in 1 ms."""
        assert min_resistance_timing(DEFECTS[8], 0.08, COLD) is None

    def test_rejects_dc_defect(self):
        with pytest.raises(ValueError, match="not a timing defect"):
            min_resistance_timing(DEFECTS[1], 0.7, HOT)

    def test_easier_scenario_needs_less_resistance(self):
        """Higher DRV (weaker cells) -> earlier crossing -> smaller min R."""
        r_weak = min_resistance_timing(DEFECTS[8], 0.70, HOT)
        r_strong = min_resistance_timing(DEFECTS[8], 0.30, HOT)
        assert r_weak < r_strong
