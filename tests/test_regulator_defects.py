"""The 32-defect registry: structure and paper category lists."""

import pytest

from repro.regulator.defects import (
    DEFECT_IDS,
    DEFECTS,
    DRF_IDS,
    NEGLIGIBLE_IDS,
    DefectCategory,
    TimingMode,
    get_defect,
)


class TestRegistryStructure:
    def test_exactly_32_sites(self):
        assert DEFECT_IDS == tuple(range(1, 33))
        assert len(DEFECTS) == 32

    def test_names(self):
        assert DEFECTS[1].name == "Df1"
        assert DEFECTS[32].name == "Df32"
        assert str(DEFECTS[7]) == "Df7"

    def test_every_site_has_description_and_branch(self):
        for site in DEFECTS.values():
            assert site.description
            assert ":" in site.branch

    def test_divider_defects_map_to_sections(self):
        for k in range(1, 7):
            assert DEFECTS[k].branch == f"divider:r{k}"

    def test_get_defect_error(self):
        with pytest.raises(KeyError, match="1..32"):
            get_defect(33)


class TestPaperCategoryLists:
    def test_negligible_set_matches_paper(self):
        """Section IV.B: Df14, Df17, Df18, Df21, Df24, Df25 are negligible."""
        assert NEGLIGIBLE_IDS == (14, 17, 18, 21, 24, 25)

    def test_table_ii_defect_set(self):
        """Table II rows: the 17 defects that can cause DRFs."""
        assert DRF_IDS == (1, 2, 3, 4, 5, 7, 8, 9, 10, 11, 12, 16, 19, 23, 26, 29, 32)

    def test_green_category(self):
        """Df2..Df5 cause both DRFs and increased power."""
        for k in (2, 3, 4, 5):
            assert DEFECTS[k].category is DefectCategory.BOTH

    def test_power_only_by_elimination(self):
        power = {
            n for n, d in DEFECTS.items() if d.category is DefectCategory.POWER
        }
        assert power == {6, 13, 15, 20, 22, 27, 28, 30, 31}

    def test_causes_drf_flag(self):
        assert DEFECTS[1].causes_drf
        assert DEFECTS[3].causes_drf  # BOTH counts
        assert not DEFECTS[6].causes_drf
        assert not DEFECTS[14].causes_drf


class TestTimingDefects:
    def test_timing_assignments(self):
        assert DEFECTS[8].timing is TimingMode.ACTIVATION_DELAY
        assert DEFECTS[11].timing is TimingMode.UNDERSHOOT
        assert DEFECTS[28].timing is TimingMode.DEACTIVATION_DELAY

    def test_all_other_defects_are_dc(self):
        timed = {8, 11, 28}
        for n, d in DEFECTS.items():
            if n not in timed:
                assert d.timing is None
